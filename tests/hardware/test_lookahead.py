"""Tests for the SABRE-style lookahead router and the router registry."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import (
    GreedySwapRouter,
    LookaheadSwapRouter,
    available_routers,
    get_default_router,
    get_router_class,
    ibm_perth_like,
    make_router,
    set_default_router,
)
from repro.hardware.devices import DeviceModel, grid_device
from repro.scenarios import BUILTIN_SCENARIOS, compile_scenario, get_scenario
from repro.sim import FeynmanPathSimulator, PathState


def _assert_equivalent(circuit, routed) -> None:
    """The routed circuit implements the same map up to the final layout."""
    simulator = FeynmanPathSimulator()
    rng = np.random.default_rng(1)
    bits = np.unique(
        rng.integers(0, 2, size=(4, circuit.num_qubits)).astype(bool), axis=0
    )
    amplitudes = np.ones(bits.shape[0], dtype=complex) / np.sqrt(bits.shape[0])
    state = PathState(bits=bits, amplitudes=amplitudes)
    logical_output = simulator.run(circuit, state)
    physical_output = simulator.run(
        routed.circuit, routed.map_state(state, final=False)
    )
    expected = routed.map_state(logical_output, final=True)
    assert abs(expected.overlap(physical_output)) ** 2 == pytest.approx(1.0)


class TestRouterRegistry:
    def test_both_routers_registered(self):
        assert {"greedy-swap", "lookahead"} <= set(available_routers())

    def test_default_is_greedy(self):
        assert get_default_router() == "greedy-swap"
        assert get_router_class(None) is GreedySwapRouter

    def test_get_router_class_resolves_names_and_classes(self):
        assert get_router_class("lookahead") is LookaheadSwapRouter
        assert get_router_class(LookaheadSwapRouter) is LookaheadSwapRouter

    def test_unknown_router_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_router_class("oracle")
        with pytest.raises(KeyError, match="available"):
            set_default_router("oracle")

    def test_set_default_router_roundtrip(self):
        set_default_router("lookahead")
        try:
            assert get_default_router() == "lookahead"
            assert get_router_class(None) is LookaheadSwapRouter
        finally:
            set_default_router("greedy-swap")

    def test_make_router_binds_device_and_options(self):
        device = ibm_perth_like()
        router = make_router("lookahead", device, lookahead_window=5)
        assert isinstance(router, LookaheadSwapRouter)
        assert router.device is device
        assert router.lookahead_window == 5


class TestLookaheadRouting:
    def test_adjacent_gate_needs_no_swaps(self):
        device = grid_device(1, 2)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        routed = LookaheadSwapRouter(device).route(circuit)
        assert routed.swap_count == 0

    def test_layout_selection_avoids_remote_placement(self):
        """Fwd/back/fwd layout search places a remote pair adjacently."""
        device = ibm_perth_like()
        circuit = QuantumCircuit(7)
        circuit.cx(0, 6)  # opposite ends of the H shape under identity layout
        greedy = GreedySwapRouter(device).route(circuit)
        routed = LookaheadSwapRouter(device).route(circuit)
        assert greedy.swap_count >= 3
        assert routed.swap_count == 0
        assert device.are_connected(*routed.circuit.gates[0].qubits)
        _assert_equivalent(circuit, routed)

    def test_explicit_initial_layout_is_respected(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        routed = LookaheadSwapRouter(device).route(
            circuit, initial_layout={0: 4, 1: 5}
        )
        assert routed.initial_layout == {0: 4, 1: 5}
        assert routed.swap_count == 0
        assert routed.circuit.gates[0].qubits == (4, 5)

    def test_remote_seed_layout_is_refined_away(self):
        """A bad explicit layout is a seed, not a contract: the fwd/back
        selection passes move the remote pair adjacent, where the greedy
        router (no layout selection) would have paid a SWAP chain."""
        device = ibm_perth_like()
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        routed = LookaheadSwapRouter(device).route(
            circuit, initial_layout={0: 0, 1: 6}
        )
        greedy = GreedySwapRouter(device).route(circuit, initial_layout={0: 0, 1: 6})
        assert greedy.swap_count >= 1
        assert routed.swap_count == 0
        assert device.are_connected(*routed.circuit.gates[0].qubits)
        _assert_equivalent(circuit, routed)

    def test_multi_qubit_gates_route_to_connected_patches(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(5)
        circuit.ccx(0, 2, 4)
        circuit.cswap(4, 0, 2)
        circuit.mcx([0, 1, 2], 4)
        routed = LookaheadSwapRouter(device).route(circuit)
        graph = device.to_networkx()
        import networkx as nx

        for instr in routed.circuit.gates:
            if len(instr.qubits) > 1:
                assert nx.is_connected(graph.subgraph(instr.qubits))
        _assert_equivalent(circuit, routed)

    def test_greedy_fallback_path_is_correct(self):
        """max_stalled_swaps=0 forces the shortest-path fallback everywhere."""
        device = ibm_perth_like()
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        circuit.ccx(1, 2, 3)
        circuit.cx(0, 2)
        routed = LookaheadSwapRouter(device, max_stalled_swaps=0).route(circuit)
        _assert_equivalent(circuit, routed)

    def test_barriers_are_mapped_and_preserved(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        circuit.barrier(0, 1, 2)
        circuit.x(1)
        routed = LookaheadSwapRouter(device).route(circuit)
        barriers = [instr for instr in routed.circuit.instructions if instr.is_barrier]
        assert len(barriers) == 1
        assert len(barriers[0].qubits) == 3

    def test_circuit_too_large_rejected(self):
        with pytest.raises(ValueError, match="only"):
            LookaheadSwapRouter(ibm_perth_like()).route(QuantumCircuit(8))

    def test_invalid_layouts_rejected(self):
        router = LookaheadSwapRouter(ibm_perth_like())
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(ValueError):
            router.route(circuit, initial_layout={0: 0})
        with pytest.raises(ValueError):
            router.route(circuit, initial_layout={0: 0, 1: 0})
        with pytest.raises(ValueError):
            router.route(circuit, initial_layout={0: 0, 1: 9})

    def test_disconnected_device_rejected(self):
        device = DeviceModel(name="split", num_qubits=4, coupling_map=((0, 1), (2, 3)))
        with pytest.raises(ValueError, match="connected"):
            LookaheadSwapRouter(device)

    def test_routing_is_deterministic(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        circuit.ccx(1, 3, 4)
        circuit.cx(2, 0)
        first = LookaheadSwapRouter(device).route(circuit)
        second = LookaheadSwapRouter(device).route(circuit)
        assert first.circuit.instructions == second.circuit.instructions
        assert first.initial_layout == second.initial_layout
        assert first.final_layout == second.final_layout


#: The seven scenarios that predate the router registry -- the lookahead
#: router must never route any of them with more SWAPs than greedy.
PRE_REGISTRY_SCENARIOS = (
    "ideal-m3",
    "htree-swap-m3",
    "htree-teleport-m3",
    "perth-m1",
    "guadalupe-m2",
    "ideal-m3-idle",
    "perth-m1-idle",
)
SEED = 11


class TestSwapCountNonRegression:
    @pytest.mark.parametrize(
        "name",
        [
            name
            for name in PRE_REGISTRY_SCENARIOS
            if not (
                get_scenario(name).mapping == "htree"
                and get_scenario(name).qram_width >= 3
            )
        ],
    )
    def test_lookahead_never_beaten_by_greedy(self, name):
        spec = get_scenario(name)
        greedy = compile_scenario(
            spec.variant(f"{name}-cmp-greedy", "swap-count probe", router="greedy-swap"),
            SEED,
        )
        lookahead = compile_scenario(
            spec.variant(f"{name}-cmp-lookahead", "swap-count probe", router="lookahead"),
            SEED,
        )
        assert lookahead.extra_swaps <= greedy.extra_swaps
        if spec.mapping == "none" or spec.routing == "teleport":
            assert lookahead.extra_swaps == greedy.extra_swaps == 0

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name",
        [
            name
            for name in PRE_REGISTRY_SCENARIOS
            if get_scenario(name).mapping == "htree"
            and get_scenario(name).qram_width >= 3
        ],
    )
    def test_lookahead_never_beaten_by_greedy_htree(self, name):
        spec = get_scenario(name)
        greedy = compile_scenario(
            spec.variant(f"{name}-cmp-greedy", "swap-count probe", router="greedy-swap"),
            SEED,
        )
        lookahead = compile_scenario(
            spec.variant(f"{name}-cmp-lookahead", "swap-count probe", router="lookahead"),
            SEED,
        )
        if spec.routing == "teleport":
            assert lookahead.extra_swaps == greedy.extra_swaps == 0
        else:
            assert lookahead.extra_swaps <= greedy.extra_swaps

    @pytest.mark.slow
    def test_htree_cluster_layout_selection_beats_residual_swaps(self):
        """Layout selection now refines the H-tree cluster seed layout.

        Before the fix the fwd/back passes were skipped whenever an initial
        layout was given, leaving ``htree-swap-m3`` with 17 residual SWAPs
        under the lookahead router; running the passes from the cluster seed
        must strictly beat that ceiling (and never regress back to it).
        """
        spec = get_scenario("htree-swap-m3")
        compiled = compile_scenario(
            spec.variant(
                "htree-swap-m3-layout-probe", "swap-count probe", router="lookahead"
            ),
            SEED,
        )
        assert compiled.extra_swaps < 17

    def test_strict_reduction_on_a_sparse_backend(self):
        """At least one Figure-12 device scenario must strictly improve."""
        spec = get_scenario("guadalupe-m2")
        greedy = compile_scenario(
            spec.variant("guadalupe-cmp-greedy", "probe", router="greedy-swap"), SEED
        )
        lookahead = compile_scenario(
            spec.variant("guadalupe-cmp-lookahead", "probe", router="lookahead"), SEED
        )
        assert lookahead.extra_swaps < greedy.extra_swaps

    def test_builtin_lookahead_variants_mirror_their_greedy_bases(self):
        """The registered *-lookahead scenarios differ from their base only in router."""
        for base_name, lookahead_name in (
            ("perth-m1", "perth-m1-lookahead"),
            ("guadalupe-m2", "guadalupe-m2-lookahead"),
        ):
            base = get_scenario(base_name)
            variant = get_scenario(lookahead_name)
            assert variant.router == "lookahead"
            assert (base.qram_width, base.sqc_width) == (
                variant.qram_width,
                variant.sqc_width,
            )
            assert base.device == variant.device
            assert base.error_reduction_factors == variant.error_reduction_factors

    def test_all_builtin_scenarios_compile_with_their_router(self):
        for spec in BUILTIN_SCENARIOS:
            if spec.router == "lookahead":
                compiled = compile_scenario(spec, SEED)
                assert compiled.spec.router == "lookahead"
                assert compiled.extra_swaps >= 0
