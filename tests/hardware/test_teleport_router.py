"""Teleport-aware lookahead router: registry, relocations, determinism.

The cross-cutting correctness property (routed circuit == logical circuit
through ``map_state`` on dense amplitudes, teleports included) lives in the
shared property harness (``test_property_router.py``); this file pins the
router-specific behaviours.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import TeleportSwapRouter, available_routers, make_router
from repro.hardware.devices import DeviceModel
from repro.sim.engine import get_engine
from repro.sim.fidelity import shot_fidelities
from repro.sim.paths import PathState


def line_device(num_qubits: int) -> DeviceModel:
    return DeviceModel(
        name=f"line{num_qubits}",
        num_qubits=num_qubits,
        coupling_map=tuple((i, i + 1) for i in range(num_qubits - 1)),
    )


def far_apart_cx() -> tuple[QuantumCircuit, dict[int, int], DeviceModel]:
    """Two logical qubits pinned to the ends of a 10-vertex line."""
    device = line_device(10)
    circuit = QuantumCircuit(num_qubits=2)
    circuit.cx(0, 1)
    circuit.cx(1, 0)
    return circuit, {0: 0, 1: device.num_qubits - 1}, device


class TestRegistry:
    def test_registered_name(self):
        assert "lookahead-teleport" in available_routers()
        router = make_router("lookahead-teleport", line_device(4))
        assert isinstance(router, TeleportSwapRouter)

    def test_options_forward(self):
        router = make_router(
            "lookahead-teleport", line_device(4), hop_weight=0.25, max_hops=3
        )
        assert router.hop_weight == 0.25
        assert router.max_hops == 3


class TestRelocations:
    def test_long_free_chain_teleports_instead_of_swapping(self):
        # refine_layout=False pins the pathological far-apart placement the
        # relocation machinery exists for; by default layout selection would
        # simply move the pair adjacent.
        circuit, layout, device = far_apart_cx()
        routed = make_router(
            "lookahead-teleport", device, refine_layout=False
        ).route(circuit, layout)
        assert routed.swap_count == 0
        assert routed.link_operations > 0
        assert any(instr.is_measurement for instr in routed.circuit.gates)

    def test_swap_router_baseline_differs(self):
        circuit, layout, device = far_apart_cx()
        swapped = make_router("lookahead", device, refine_layout=False).route(
            circuit, layout
        )
        assert swapped.swap_count > 0
        assert swapped.link_operations == 0

    def test_layout_refinement_dissolves_the_pathological_seed(self):
        """With refinement on (the default) the far-apart seed layout is
        repaired during layout selection, so no relocation is ever needed."""
        circuit, layout, device = far_apart_cx()
        routed = make_router("lookahead-teleport", device).route(circuit, layout)
        assert routed.swap_count == 0
        assert routed.link_operations == 0

    def test_statevector_exact_for_every_outcome(self):
        circuit, layout, device = far_apart_cx()
        routed = make_router(
            "lookahead-teleport", device, refine_layout=False
        ).route(circuit, layout)
        state = PathState.register_superposition(2, [0, 1])
        logical_output = get_engine("feynman-tape").run(circuit, state)
        expected = routed.map_state(logical_output, final=True)
        physical_input = routed.map_state(state, final=False)
        keep = routed.physical_qubits([0, 1], final=True)
        for seed in range(5):
            dense = get_engine("statevector").run(
                routed.circuit, physical_input, rng=np.random.default_rng(seed)
            )
            fidelities = shot_fidelities(
                expected,
                dense.bits,
                dense.amplitudes,
                shots=1,
                n_paths=dense.num_paths,
                keep_qubits=keep,
            )
            assert fidelities[0] == pytest.approx(1.0)

    def test_short_distances_fall_back_to_swaps(self):
        """At adjacent-cluster distances pure SWAP routing wins the score."""
        device = line_device(4)
        circuit = QuantumCircuit(num_qubits=3)
        circuit.cx(0, 2)
        routed = make_router("lookahead-teleport", device).route(circuit)
        assert routed.link_operations == 0

    def test_relocation_frees_the_origin_vertex(self):
        circuit, layout, device = far_apart_cx()
        routed = make_router(
            "lookahead-teleport", device, refine_layout=False
        ).route(circuit, layout)
        final = routed.physical_qubits([0, 1], final=True)
        assert len(set(final)) == 2
        # The teleported qubit no longer sits at its pinned end.
        assert final != [0, device.num_qubits - 1]


class TestDeterminism:
    def test_route_is_reproducible(self):
        circuit, layout, device = far_apart_cx()
        router = make_router("lookahead-teleport", device, refine_layout=False)
        first = router.route(circuit, layout)
        second = router.route(circuit, layout)
        assert first.circuit.instructions == second.circuit.instructions
        assert first.final_layout == second.final_layout

    def test_layout_selection_pass_handles_relocations(self):
        """Routing without an initial layout runs fwd/back/fwd passes that
        apply relocations to the layout without emitting instructions."""
        circuit, _, device = far_apart_cx()
        routed = make_router("lookahead-teleport", device).route(circuit)
        state = PathState.register_superposition(2, [0, 1])
        logical_output = get_engine("feynman-tape").run(circuit, state)
        expected = routed.map_state(logical_output, final=True)
        dense = get_engine("statevector").run(
            routed.circuit,
            routed.map_state(state, final=False),
            rng=np.random.default_rng(0),
        )
        fidelities = shot_fidelities(
            expected,
            dense.bits,
            dense.amplitudes,
            shots=1,
            n_paths=dense.num_paths,
            keep_qubits=routed.physical_qubits([0, 1], final=True),
        )
        assert fidelities[0] == pytest.approx(1.0)
