"""Tests for the synthetic device models."""

import networkx as nx
import pytest

from repro.hardware import DEVICES, DeviceModel, ibm_perth_like, ibmq_guadalupe_like
from repro.hardware.devices import dual_rail_cavity_like, grid_device


class TestDeviceModels:
    def test_perth_topology(self):
        device = ibm_perth_like()
        assert device.num_qubits == 7
        assert len(device.coupling_map) == 6
        assert nx.is_connected(device.to_networkx())
        # The H-shape has two degree-3 hubs (qubits 1 and 5).
        graph = device.to_networkx()
        hubs = [node for node in graph if graph.degree(node) == 3]
        assert sorted(hubs) == [1, 5]

    def test_guadalupe_topology(self):
        device = ibmq_guadalupe_like()
        assert device.num_qubits == 16
        assert nx.is_connected(device.to_networkx())
        # Heavy-hex fragments are sparse: average degree stays 2.

        assert device.average_degree() == pytest.approx(2.0)

    def test_registry(self):
        assert set(DEVICES) == {
            "ibm_perth",
            "ibmq_guadalupe",
            "dual-rail-cavity",
        }

    def test_distance_and_paths(self):
        device = ibm_perth_like()
        assert device.are_connected(0, 1)
        assert not device.are_connected(0, 6)
        assert device.distance(0, 6) == 4
        path = device.shortest_path(0, 6)
        assert path[0] == 0 and path[-1] == 6

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            DeviceModel(name="bad", num_qubits=2, coupling_map=((0, 5),))
        with pytest.raises(ValueError):
            DeviceModel(name="bad", num_qubits=2, coupling_map=((1, 1),))

    def test_grid_device(self):
        device = grid_device(3, 4)
        assert device.num_qubits == 12
        assert len(device.coupling_map) == 3 * 3 + 2 * 4
        assert device.name == "grid-3x4"

    def test_error_rate_scale_matches_paper_assumption(self):
        """Appendix A assumes current hardware error rates around 1e-3 to 1e-2."""
        for device in DEVICES.values():
            assert 1e-4 <= device.single_qubit_error <= 1e-2
            assert 1e-3 <= device.two_qubit_error <= 5e-2


class TestPauliBias:
    def test_ibm_devices_are_unbiased(self):
        """The Figure-12 backends keep the paper's depolarizing model."""
        assert ibm_perth_like().pauli_bias == (1.0, 1.0, 1.0)
        assert ibmq_guadalupe_like().pauli_bias == (1.0, 1.0, 1.0)

    def test_cavity_device_is_erasure_biased(self):
        """X/Y (detectable) dominate Z (logical) on the erasure calibration."""
        bias = dual_rail_cavity_like().pauli_bias
        assert bias[0] == bias[1]
        assert bias[0] > 10 * bias[2] > 0

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="three non-negative"):
            DeviceModel(
                name="bad", num_qubits=1, coupling_map=(), pauli_bias=(1.0, 1.0)
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="three non-negative"):
            DeviceModel(
                name="bad",
                num_qubits=1,
                coupling_map=(),
                pauli_bias=(1.0, -0.5, 1.0),
            )

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="positive weight"):
            DeviceModel(
                name="bad",
                num_qubits=1,
                coupling_map=(),
                pauli_bias=(0.0, 0.0, 0.0),
            )
