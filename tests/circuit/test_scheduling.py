"""Unit and property tests for ASAP scheduling."""

from hypothesis import given, settings

from repro.circuit import Instruction, QuantumCircuit
from repro.circuit.scheduling import (
    asap_layers,
    circuit_depth,
    idle_slack,
    layer_widths,
)
from tests.conftest import random_reversible_circuits


class TestAsapLayers:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert asap_layers(circuit) == []
        assert circuit_depth(circuit) == 0

    def test_layers_contain_disjoint_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.x(3)
        layers = asap_layers(circuit)
        for layer in layers:
            seen: set[int] = set()
            for instr in layer:
                assert not (seen & set(instr.qubits))
                seen.update(instr.qubits)

    def test_noise_instructions_excluded_by_default(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.append(Instruction(gate="X", qubits=(0,), tags=frozenset({"noise"})))
        assert circuit_depth(circuit) == 1
        assert circuit_depth(circuit, include_noise=True) == 2

    def test_partial_barrier_only_syncs_listed_qubits(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.barrier(0, 1)
        circuit.x(1)  # must wait for the barrier
        circuit.x(2)  # unaffected, can go in layer 0
        layers = asap_layers(circuit)
        assert len(layers) == 2
        first_layer_qubits = {instr.qubits[0] for instr in layers[0]}
        assert first_layer_qubits == {0, 2}

    def test_layer_widths(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        circuit.cx(1, 2)
        assert layer_widths(circuit) == [2, 1]


class TestSchedulingProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=20))
    def test_depth_bounded_by_gate_count(self, circuit):
        depth = circuit_depth(circuit)
        assert 0 <= depth <= circuit.num_gates

    @settings(max_examples=50, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=20))
    def test_layers_partition_all_gates(self, circuit):
        layers = asap_layers(circuit)
        assert sum(len(layer) for layer in layers) == circuit.num_gates

    @settings(max_examples=50, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=20))
    def test_layers_respect_per_qubit_gate_order(self, circuit):
        """Gates touching the same qubit appear in non-decreasing layer order."""
        layer_of: dict[int, int] = {}
        layers = asap_layers(circuit)
        for layer_index, layer in enumerate(layers):
            for instr in layer:
                layer_of[id(instr)] = layer_index
        last_layer_per_qubit: dict[int, int] = {}
        for instr in circuit.gates:
            layer_index = layer_of[id(instr)]
            for qubit in instr.qubits:
                assert last_layer_per_qubit.get(qubit, -1) < layer_index
                last_layer_per_qubit[qubit] = layer_index


class TestIdleSlackProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=20))
    def test_busy_plus_idle_fills_the_schedule(self, circuit):
        """For every qubit: gate layers + idle layers == schedule depth.

        Each qubit occupies exactly one layer per gate it participates in,
        so its idle layers (charged at gates plus the trailing flush) must
        account for the rest of the schedule -- the conservation law the
        idle-noise site budget relies on.
        """
        slack = idle_slack(circuit)
        assert slack.depth == circuit_depth(circuit)
        busy = {q: 0 for q in range(circuit.num_qubits)}
        idle = {q: 0 for q in range(circuit.num_qubits)}
        for instr, entry in zip(circuit.gates, slack.gate_idle):
            for q in instr.qubits:
                busy[q] += 1
            for q, layers in entry:
                assert layers > 0
                idle[q] += layers
        for q, layers in slack.final_idle:
            assert layers > 0
            idle[q] += layers
        for q in range(circuit.num_qubits):
            assert busy[q] + idle[q] == slack.depth

    @settings(max_examples=30, deadline=None)
    @given(random_reversible_circuits(max_qubits=5, max_gates=15))
    def test_gate_idle_aligns_with_barrier_free_gates(self, circuit):
        slack = idle_slack(circuit)
        assert len(slack.gate_idle) == len(circuit.gates)

    def test_empty_circuit_has_no_slack(self):
        slack = idle_slack(QuantumCircuit(3))
        assert slack.depth == 0
        assert slack.gate_idle == ()
        assert slack.final_idle == ()
