"""Tests for Clifford+T costs and explicit gate decompositions."""

import numpy as np
import pytest

from repro.circuit import (
    CliffordTCost,
    Instruction,
    QuantumCircuit,
    circuit_cost,
    decompose_ccx,
    decompose_cswap,
    decompose_mcx,
    gate_cost,
)
from repro.circuit.decompose import mcx_cost
from repro.sim import StatevectorSimulator


def _unitary_of(circuit: QuantumCircuit) -> np.ndarray:
    """Full unitary by simulating every computational basis input."""
    dimension = 2**circuit.num_qubits
    simulator = StatevectorSimulator()
    columns = []
    for basis in range(dimension):
        vector = np.zeros(dimension, dtype=complex)
        vector[basis] = 1.0
        columns.append(simulator.run(circuit, vector))
    return np.array(columns).T


class TestGateCosts:
    def test_toffoli_cost_matches_literature(self):
        cost = gate_cost(Instruction(gate="CCX", qubits=(0, 1, 2)))
        assert cost.t_count == 7
        assert cost.t_depth == 3

    def test_cswap_cost_matches_paper_quote(self):
        """Sec. 2.2.1: CSWAP decomposes to depth 12, T depth 3, no ancillae."""
        cost = gate_cost(Instruction(gate="CSWAP", qubits=(0, 1, 2)))
        assert cost.total_depth == 12
        assert cost.t_depth == 3
        assert cost.ancillae == 0

    def test_clifford_gates_have_no_t_cost(self):
        for gate, qubits in (("X", (0,)), ("CX", (0, 1)), ("SWAP", (0, 1)), ("H", (0,))):
            cost = gate_cost(Instruction(gate=gate, qubits=qubits))
            assert cost.t_count == 0

    def test_mcx_cost_grows_linearly_in_controls(self):
        small = mcx_cost(3)
        large = mcx_cost(6)
        assert large.t_count > small.t_count
        assert large.ancillae == 4
        # V-chain: 2(c-2)+1 Toffolis.
        assert mcx_cost(5).t_count == 7 * (2 * 3 + 1)

    def test_mcx_cost_small_cases(self):
        assert mcx_cost(0).clifford_count == 1
        assert mcx_cost(1).t_count == 0
        assert mcx_cost(2).t_count == 7
        with pytest.raises(ValueError):
            mcx_cost(-1)

    def test_cost_addition_and_scaling(self):
        a = CliffordTCost(t_count=2, t_depth=1, total_depth=3)
        b = CliffordTCost(t_count=1, clifford_count=4, total_depth=2)
        combined = a + b
        assert combined.t_count == 3
        assert combined.total_depth == 5
        assert a.scaled(3).t_count == 6


class TestCircuitCost:
    def test_parallel_gates_share_depth(self):
        circuit = QuantumCircuit(6)
        circuit.ccx(0, 1, 2)
        circuit.ccx(3, 4, 5)
        cost = circuit_cost(circuit)
        assert cost.t_count == 14
        # Both Toffolis are in one ASAP layer, so T depth is that of a single one.
        assert cost.t_depth == 3

    def test_sequential_gates_accumulate_depth(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        circuit.ccx(0, 1, 2)
        cost = circuit_cost(circuit)
        assert cost.t_depth == 6

    def test_noise_excluded_from_cost(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.append(Instruction(gate="X", qubits=(0,), tags=frozenset({"noise"})))
        assert circuit_cost(circuit).clifford_count == 1


class TestExplicitDecompositions:
    def test_ccx_decomposition_is_unitarily_equivalent(self):
        primitive = QuantumCircuit(3)
        primitive.ccx(0, 1, 2)
        decomposed = QuantumCircuit(3, instructions=decompose_ccx(0, 1, 2))
        assert np.allclose(_unitary_of(primitive), _unitary_of(decomposed))

    def test_cswap_decomposition_is_unitarily_equivalent(self):
        primitive = QuantumCircuit(3)
        primitive.cswap(0, 1, 2)
        decomposed = QuantumCircuit(3, instructions=decompose_cswap(0, 1, 2))
        assert np.allclose(_unitary_of(primitive), _unitary_of(decomposed))

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_mcx_vchain_matches_primitive(self, num_controls):
        """The V-chain equals MCX on the clean-ancilla subspace (ancillae in |0>),
        and returns the ancillae to |0> afterwards."""
        controls = tuple(range(num_controls))
        target = num_controls
        ancillae = tuple(range(num_controls + 1, num_controls + 1 + num_controls - 2))
        total = num_controls + 1 + len(ancillae)

        primitive = QuantumCircuit(total)
        primitive.mcx(controls, target)
        decomposed = QuantumCircuit(
            total, instructions=decompose_mcx(controls, target, ancillae)
        )
        unitary_primitive = _unitary_of(primitive)
        unitary_decomposed = _unitary_of(decomposed)
        # Restrict to input basis states whose ancilla qubits are all |0>.
        ancilla_mask = sum(1 << a for a in ancillae)
        clean_inputs = [
            basis for basis in range(2**total) if basis & ancilla_mask == 0
        ]
        assert np.allclose(
            unitary_primitive[:, clean_inputs], unitary_decomposed[:, clean_inputs]
        )

    def test_mcx_decomposition_requires_enough_ancillae(self):
        with pytest.raises(ValueError):
            decompose_mcx((0, 1, 2, 3), 4, ancillae=(5,))

    def test_mcx_decomposition_small_cases(self):
        assert decompose_mcx((), 0, ())[0].gate == "X"
        assert decompose_mcx((0,), 1, ())[0].gate == "CX"
        assert decompose_mcx((0, 1), 2, ())[0].gate == "CCX"
