"""Tests for the compiled gate-tape IR (:mod:`repro.circuit.ir`)."""

import numpy as np

from repro.circuit import QuantumCircuit, compile_circuit
from repro.circuit.ir import (
    GATE_OPCODES,
    OP_CSWAP,
    OP_CX,
    OP_NOP,
    OP_SWAP,
    OPCODE_NAMES,
)
from repro.sim import GateNoiseModel, NoiselessModel, PauliChannel


def _example_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(6)
    circuit.swap(0, 1)
    circuit.swap(2, 3)  # fuses with the first swap
    circuit.swap(1, 2)  # overlaps: new group
    circuit.barrier()
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    circuit.cx(4, 5)
    circuit.i(0)
    circuit.cswap(0, 1, 2)
    return circuit


class TestCompile:
    def test_opcode_table_covers_registry(self):
        from repro.circuit.gates import ALL_GATES

        assert set(GATE_OPCODES) == set(ALL_GATES) - {"BARRIER"}
        assert all(OPCODE_NAMES[op] == name for name, op in GATE_OPCODES.items())

    def test_groups_and_fusion(self):
        tape = compile_circuit(_example_circuit())
        assert [group.opcode for group in tape.groups] == [
            OP_SWAP,
            OP_SWAP,
            OP_CX,
            OP_NOP,
            OP_CSWAP,
        ]
        assert [group.size for group in tape.groups] == [2, 1, 3, 1, 1]

    def test_barriers_dropped_but_gates_kept(self):
        circuit = _example_circuit()
        tape = compile_circuit(circuit)
        assert tape.num_gates == circuit.num_gates
        assert all(not instr.is_barrier for instr in tape.gates)
        assert tape.num_qubits == circuit.num_qubits

    def test_gate_group_is_monotonic_and_consistent(self):
        tape = compile_circuit(_example_circuit())
        assert np.all(np.diff(tape.gate_group) >= 0)
        # Each gate's operands appear in the group it is assigned to.
        for gate, group_index in zip(tape.gates, tape.gate_group):
            group = tape.groups[int(group_index)]
            assert GATE_OPCODES[gate.gate] == group.opcode
            assert any(
                tuple(row) == gate.qubits for row in group.qubits.tolist()
            )

    def test_groups_are_pairwise_disjoint(self):
        tape = compile_circuit(_example_circuit())
        for group in tape.groups:
            flat = group.qubits.ravel().tolist()
            assert len(flat) == len(set(flat))

    def test_unsupported_path_gates_recorded(self, monkeypatch):
        # Every registered gate is path-simulable since H joined the set, so
        # exercise the rejection safety net with a synthetic registry entry.
        from repro.circuit import gates as gates_mod
        from repro.circuit import ir as ir_mod

        monkeypatch.setitem(
            gates_mod.ALL_GATES,
            "RX",
            gates_mod._spec(
                "RX", 1, classical_reversible=False, clifford=False, diagonal=False
            ),
        )
        monkeypatch.setitem(ir_mod.GATE_OPCODES, "RX", ir_mod.GATE_OPCODES["X"])
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.add("RX", 1)
        tape = compile_circuit(circuit)
        assert tape.unsupported_path_gates == ("RX",)

    def test_hadamard_is_path_simulable_and_tagged(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.h(1)
        tape = compile_circuit(circuit)
        assert tape.unsupported_path_gates == ()
        assert tape.max_branch_level == 1


class TestCache:
    def test_tape_cached_on_circuit(self):
        circuit = _example_circuit()
        assert compile_circuit(circuit) is compile_circuit(circuit)

    def test_append_invalidates_cache(self):
        circuit = _example_circuit()
        first = compile_circuit(circuit)
        circuit.x(5)
        second = compile_circuit(circuit)
        assert second is not first
        assert second.num_gates == first.num_gates + 1

    def test_direct_mutation_detected_by_length(self):
        circuit = _example_circuit()
        first = compile_circuit(circuit)
        circuit.instructions.append(circuit.instructions[0])
        assert compile_circuit(circuit) is not first

    def test_copies_do_not_share_tapes(self):
        circuit = _example_circuit()
        compile_circuit(circuit)
        clone = circuit.copy()
        assert clone._tape is None


class TestNoiseSites:
    def test_site_order_matches_interpreted_sampling(self):
        circuit = _example_circuit()
        tape = compile_circuit(circuit)
        noise = GateNoiseModel(PauliChannel.phase_flip(1e-2))
        sites = tape.noise_sites(noise)
        expected = [
            (index, qubit)
            for index, instr in enumerate(tape.gates)
            for qubit, channel in noise.gate_error_channels(instr)
        ]
        assert list(zip(sites.gate_index.tolist(), sites.qubit.tolist())) == expected
        assert np.array_equal(sites.group_index, tape.gate_group[sites.gate_index])

    def test_noiseless_model_has_no_sites(self):
        tape = compile_circuit(_example_circuit())
        assert tape.noise_sites(NoiselessModel()).n_sites == 0

    def test_site_table_memoized_per_model(self):
        tape = compile_circuit(_example_circuit())
        noise = GateNoiseModel(PauliChannel.bit_flip(1e-3))
        assert tape.noise_sites(noise) is tape.noise_sites(noise)

    def test_bulk_draw_matches_per_site_sampling(self):
        # Mixed channels (two_qubit_factor != 1) force several bulk runs; the
        # stacked result must equal sequential per-site draws from one
        # generator -- the property the tape engine's seeded equivalence with
        # the interpreted engine rests on.
        tape = compile_circuit(_example_circuit())
        noise = GateNoiseModel(
            PauliChannel.depolarizing(0.3), two_qubit_factor=2.0
        )
        sites = tape.noise_sites(noise)
        bulk = sites.draw(shots=64, rng=np.random.default_rng(3))
        sequential_rng = np.random.default_rng(3)
        manual = np.stack(
            [channel.sample(sequential_rng, 64) for channel in sites.channels]
        )
        assert bulk.shape == (sites.n_sites, 64)
        assert np.array_equal(bulk, manual)
