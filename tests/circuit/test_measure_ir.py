"""Measurement/feedforward instructions in the circuit model and the tape IR.

Covers the fusion-barrier compile semantics of ``MEASURE``/``CPAULI``, the
classical-register bookkeeping, instruction validation, scheduling rules and
the QASM export of measured circuits.
"""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.circuit.ir import (
    OP_CPAULI,
    OP_CX,
    OP_MEASURE,
    compile_circuit,
)
from repro.circuit.qasm import to_qasm
from repro.circuit.scheduling import circuit_depth, idle_slack


class TestInstructionValidation:
    def test_measure_params_validated(self):
        with pytest.raises(ValueError, match="cbit, basis"):
            Instruction(gate="MEASURE", qubits=(0,), params=(1,))
        with pytest.raises(ValueError, match="non-negative"):
            Instruction(gate="MEASURE", qubits=(0,), params=(-1, "Z"))
        with pytest.raises(ValueError, match="basis"):
            Instruction(gate="MEASURE", qubits=(0,), params=(0, "W"))

    def test_cpauli_params_validated(self):
        with pytest.raises(ValueError, match="pauli, cbit"):
            Instruction(gate="CPAULI", qubits=(0,), params=("X",))
        with pytest.raises(ValueError, match="pauli must be"):
            Instruction(gate="CPAULI", qubits=(0,), params=("H", 0))
        with pytest.raises(ValueError, match="non-negative"):
            Instruction(gate="CPAULI", qubits=(0,), params=("X", -2))
        with pytest.raises(ValueError, match="duplicate"):
            Instruction(gate="CPAULI", qubits=(0,), params=("X", 1, 1))

    def test_ordinary_gates_take_no_params(self):
        with pytest.raises(ValueError, match="takes no params"):
            Instruction(gate="CX", qubits=(0, 1), params=(3,))

    def test_accessors(self):
        measure = Instruction(gate="MEASURE", qubits=(2,), params=(5, "X"))
        assert measure.is_measurement and not measure.is_frame
        assert (measure.cbit, measure.basis) == (5, "X")
        frame = Instruction(gate="CPAULI", qubits=(1,), params=("Z", 0, 3))
        assert frame.is_frame and not frame.is_measurement
        assert frame.frame_pauli == "Z"
        assert frame.condition_bits == (0, 3)
        with pytest.raises(ValueError):
            frame.cbit
        with pytest.raises(ValueError):
            measure.frame_pauli

    def test_measure_has_no_inverse(self):
        measure = Instruction(gate="MEASURE", qubits=(0,), params=(0, "Z"))
        with pytest.raises(ValueError, match="irreversible"):
            measure.inverse()
        frame = Instruction(gate="CPAULI", qubits=(0,), params=("X", 0))
        assert frame.inverse() == frame  # replaying the frame undoes it

    def test_params_survive_remap_and_tags(self):
        measure = Instruction(gate="MEASURE", qubits=(0,), params=(2, "X"))
        assert measure.remapped({0: 4}).params == (2, "X")
        assert measure.with_tags("teleport").params == (2, "X")


class TestClassicalRegister:
    def test_measure_allocates_sequential_cbits(self):
        circuit = QuantumCircuit(num_qubits=3)
        assert circuit.measure(0) == 0
        assert circuit.measure(1, basis="X") == 1
        assert circuit.measure(0, cbit=7) == 7
        assert circuit.measure(2) == 8
        assert circuit.num_clbits == 8 + 1

    def test_num_clbits_from_constructor_instructions(self):
        instrs = [Instruction(gate="MEASURE", qubits=(0,), params=(3, "Z"))]
        circuit = QuantumCircuit(num_qubits=1, instructions=instrs)
        assert circuit.num_clbits == 4

    def test_tape_covers_unmeasured_cpauli_bits(self):
        circuit = QuantumCircuit(num_qubits=1)
        circuit.cpauli("X", 0, [6])
        tape = compile_circuit(circuit)
        assert tape.num_clbits == 7
        assert tape.num_measurements == 0

    def test_duplicate_slot_rejected(self):
        """Regression pin: an explicit ``cbit`` colliding with a written slot.

        ``measure`` used to let an explicit ``cbit`` silently reuse a slot an
        earlier (auto-allocated or explicit) measurement had written,
        clobbering its outcome in the classical register.
        """
        circuit = QuantumCircuit(num_qubits=2)
        circuit.measure(0)  # auto-allocates slot 0
        with pytest.raises(ValueError, match="already written"):
            circuit.measure(1, cbit=0)

    def test_auto_allocation_never_collides_with_explicit_slots(self):
        circuit = QuantumCircuit(num_qubits=2)
        circuit.measure(0, cbit=1)
        assert circuit.measure(1) == 2  # continues past the explicit write

    def test_negative_slot_rejected(self):
        circuit = QuantumCircuit(num_qubits=1)
        with pytest.raises(ValueError, match="non-negative"):
            circuit.measure(0, cbit=-1)

    def test_duplicate_slot_rejected_in_constructor(self):
        instrs = [
            Instruction(gate="MEASURE", qubits=(0,), params=(0, "Z")),
            Instruction(gate="MEASURE", qubits=(0,), params=(0, "Z")),
        ]
        with pytest.raises(ValueError, match="already written"):
            QuantumCircuit(num_qubits=1, instructions=instrs)

    def test_rejected_append_leaves_circuit_unchanged(self):
        circuit = QuantumCircuit(num_qubits=1)
        circuit.measure(0, cbit=2)
        before = list(circuit.instructions)
        with pytest.raises(ValueError, match="already written"):
            circuit.append(
                Instruction(gate="MEASURE", qubits=(0,), params=(2, "Z"))
            )
        assert circuit.instructions == before
        assert circuit.num_clbits == 3

    def test_gap_slots_are_legal_and_never_reused(self):
        """Explicit ``cbit`` gaps count toward ``num_clbits`` and stay unwritten.

        Auto-allocation continues from ``num_clbits``, so slots 0..2 here are
        gaps: engines zero-fill them (a ``CPAULI`` conditioned on a gap slot
        never fires) and no later auto-allocated measurement lands in one.
        """
        circuit = QuantumCircuit(num_qubits=2)
        assert circuit.measure(0, cbit=3) == 3
        assert circuit.measure(1) == 4  # past the gap, not into it
        assert circuit.num_clbits == 5


class TestFusionBarrier:
    def test_measure_breaks_fusion_runs(self):
        """A measurement between disjoint CXs splits what would fuse."""
        fused = QuantumCircuit(num_qubits=4)
        fused.cx(0, 1)
        fused.cx(2, 3)
        assert compile_circuit(fused).num_groups == 1

        barred = QuantumCircuit(num_qubits=4)
        barred.cx(0, 1)
        barred.measure(0)
        barred.cx(2, 3)
        tape = compile_circuit(barred)
        assert [group.opcode for group in tape.groups] == [
            OP_CX,
            OP_MEASURE,
            OP_CX,
        ]

    def test_measure_groups_are_single_and_carry_params(self):
        circuit = QuantumCircuit(num_qubits=2)
        cbit = circuit.measure(1, basis="X")
        circuit.cpauli("Y", 0, [cbit])
        tape = compile_circuit(circuit)
        measure_group, frame_group = tape.groups
        assert measure_group.opcode == OP_MEASURE
        assert measure_group.size == 1
        assert measure_group.params == (0, "X")
        assert frame_group.opcode == OP_CPAULI
        assert frame_group.params == ("Y", 0)
        assert tape.measurements == ((0, "X"),)

    def test_consecutive_measures_do_not_fuse(self):
        circuit = QuantumCircuit(num_qubits=3)
        for qubit in range(3):
            circuit.measure(qubit)
        tape = compile_circuit(circuit)
        assert tape.num_groups == 3
        assert tape.measurements == ((0, "Z"), (1, "Z"), (2, "Z"))


class TestScheduling:
    def test_measure_occupies_a_layer(self):
        circuit = QuantumCircuit(num_qubits=1)
        circuit.x(0)
        circuit.measure(0)
        assert circuit_depth(circuit) == 2

    def test_frames_are_zero_duration(self):
        circuit = QuantumCircuit(num_qubits=2)
        circuit.x(0)
        circuit.cpauli("X", 0, [0])
        circuit.cpauli("Z", 1, [0])
        assert circuit_depth(circuit) == 1

    def test_idle_slack_alignment_with_frames(self):
        """Frame corrections keep the per-gate idle table tape-aligned."""
        circuit = QuantumCircuit(num_qubits=2)
        circuit.x(0)
        circuit.cpauli("X", 1, [0])
        circuit.x(0)
        circuit.x(1)
        slack = idle_slack(circuit)
        tape = compile_circuit(circuit)
        assert len(slack.gate_idle) == tape.num_gates
        assert slack.gate_idle[1] == ()  # the frame entry is empty


class TestQasmExport:
    def test_measured_circuit_exports(self):
        circuit = QuantumCircuit(num_qubits=2)
        circuit.cx(0, 1)
        cbit = circuit.measure(0, basis="X")
        circuit.cpauli("Z", 1, [cbit])
        qasm = to_qasm(circuit)
        assert "creg c[1];" in qasm
        assert "h q[0];" in qasm  # X-basis rotation
        assert "measure q[0] -> c[0];" in qasm
        assert "pauli-frame: z q[1] if c[0];" in qasm

    def test_z_measure_has_no_basis_rotation(self):
        circuit = QuantumCircuit(num_qubits=1)
        circuit.measure(0)
        qasm = to_qasm(circuit)
        assert "h q[0];" not in qasm
        assert "measure q[0] -> c[0];" in qasm
