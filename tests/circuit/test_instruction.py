"""Unit tests for the Instruction dataclass."""

import pytest

from repro.circuit import Instruction


class TestConstruction:
    def test_basic_construction_normalises_name(self):
        instr = Instruction(gate="cx", qubits=(0, 1))
        assert instr.gate == "CX"
        assert instr.qubits == (0, 1)
        assert instr.num_qubits == 2

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(gate="CX", qubits=(1, 1))

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(gate="X", qubits=(-2,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Instruction(gate="CCX", qubits=(0, 1))

    def test_tags_are_frozen_set(self):
        instr = Instruction(gate="X", qubits=(0,), tags={"classical"})
        assert isinstance(instr.tags, frozenset)
        assert instr.is_classically_controlled
        assert not instr.is_noise

    def test_noise_tag_detection(self):
        instr = Instruction(gate="Z", qubits=(2,), tags={"noise"})
        assert instr.is_noise


class TestTransforms:
    def test_inverse_of_self_inverse_gate(self):
        instr = Instruction(gate="CSWAP", qubits=(0, 1, 2))
        assert instr.inverse() == instr

    def test_inverse_of_s_gate(self):
        assert Instruction(gate="S", qubits=(0,)).inverse().gate == "SDG"
        assert Instruction(gate="T", qubits=(0,)).inverse().gate == "TDG"

    def test_remapped_translates_qubits(self):
        instr = Instruction(gate="CCX", qubits=(0, 1, 2), tags={"classical"})
        mapped = instr.remapped({0: 5, 1: 3, 2: 7})
        assert mapped.qubits == (5, 3, 7)
        assert mapped.tags == instr.tags

    def test_with_tags_adds_labels(self):
        instr = Instruction(gate="SWAP", qubits=(0, 1))
        tagged = instr.with_tags("routing")
        assert "routing" in tagged.tags
        assert instr.tags == frozenset()

    def test_controls_and_target_for_mcx(self):
        instr = Instruction(gate="MCX", qubits=(0, 1, 2, 3))
        controls, target = instr.controls_and_target()
        assert controls == (0, 1, 2)
        assert target == 3

    def test_controls_and_target_rejects_swap(self):
        with pytest.raises(ValueError):
            Instruction(gate="SWAP", qubits=(0, 1)).controls_and_target()


class TestBarrier:
    def test_barrier_properties(self):
        barrier = Instruction(gate="BARRIER", qubits=(0, 1, 2))
        assert barrier.is_barrier
        assert not barrier.is_noise

    def test_barrier_allows_empty_qubits(self):
        barrier = Instruction(gate="BARRIER", qubits=())
        assert barrier.qubits == ()
