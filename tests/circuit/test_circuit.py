"""Unit and property tests for QuantumCircuit."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuit import Instruction, QuantumCircuit
from repro.sim import FeynmanPathSimulator, PathState
from tests.conftest import random_reversible_circuits


class TestBuilders:
    def test_gate_builders_append_instructions(self):
        circuit = QuantumCircuit(4)
        circuit.x(0)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.cswap(0, 2, 3)
        circuit.swap(1, 3)
        circuit.z(2)
        assert circuit.num_gates == 6
        assert [instr.gate for instr in circuit] == [
            "X",
            "CX",
            "CCX",
            "CSWAP",
            "SWAP",
            "Z",
        ]

    def test_mcx_builder_downgrades_small_cases(self):
        circuit = QuantumCircuit(5)
        circuit.mcx([], 0)
        circuit.mcx([1], 0)
        circuit.mcx([1, 2], 0)
        circuit.mcx([1, 2, 3], 0)
        assert [instr.gate for instr in circuit] == ["X", "CX", "CCX", "MCX"]

    def test_mcx_on_pattern_conjugates_zero_controls(self):
        circuit = QuantumCircuit(4)
        circuit.mcx_on_pattern([0, 1, 2], pattern=0b101, target=3)
        gates = [instr.gate for instr in circuit]
        # One X before and after the MCX for the single zero-bit control.
        assert gates == ["X", "MCX", "X"]
        assert circuit.instructions[0].qubits == (1,)

    def test_mcx_on_pattern_rejects_out_of_range_patterns(self):
        # Regression: an operator-precedence bug (`a or b and c`) used to let
        # any pattern through when there were zero controls.
        circuit = QuantumCircuit(4)
        with pytest.raises(ValueError, match="does not fit"):
            circuit.mcx_on_pattern([], pattern=1, target=3)
        with pytest.raises(ValueError, match="does not fit"):
            circuit.mcx_on_pattern([0, 1], pattern=4, target=3)
        with pytest.raises(ValueError, match="does not fit"):
            circuit.mcx_on_pattern([0, 1], pattern=-1, target=3)
        assert len(circuit) == 0

    def test_mcx_on_pattern_zero_controls_fires_unconditionally(self):
        circuit = QuantumCircuit(1)
        circuit.mcx_on_pattern([], pattern=0, target=0)
        assert [instr.gate for instr in circuit] == ["X"]

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cx(0, 5)

    def test_tags_forwarded(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1, tags=("classical",))
        assert circuit.count_tagged("classical") == 1


class TestAccounting:
    def test_count_ops_excludes_barriers(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.barrier()
        circuit.x(1)
        counts = circuit.count_ops()
        assert counts == {"X": 2}
        assert circuit.num_gates == 2

    def test_count_ops_can_exclude_noise(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.append(Instruction(gate="Z", qubits=(1,), tags=frozenset({"noise"})))
        assert circuit.count_ops(include_noise=True)["Z"] == 1
        assert "Z" not in circuit.count_ops(include_noise=False)

    def test_used_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(1, 3)
        assert circuit.used_qubits() == {1, 3}


class TestTransforms:
    def test_compose_concatenates(self):
        a = QuantumCircuit(2)
        a.x(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b)
        assert [instr.gate for instr in combined] == ["X", "CX"]
        # originals untouched
        assert len(a) == 1 and len(b) == 1

    def test_compose_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_without_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.barrier()
        circuit.x(1)
        assert len(circuit.without_barriers()) == 2

    def test_remapped(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remapped({0: 4, 1: 2}, num_qubits=6)
        assert remapped.num_qubits == 6
        assert remapped.instructions[0].qubits == (4, 2)

    @settings(max_examples=40, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=15))
    def test_circuit_followed_by_inverse_is_identity(self, circuit):
        """Property: C . C^{-1} acts as the identity on computational basis states."""
        roundtrip = circuit.compose(circuit.inverse())
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(4, circuit.num_qubits)).astype(bool)
        state = PathState(bits=bits.copy(), amplitudes=np.ones(4, dtype=complex))
        output = FeynmanPathSimulator().run(roundtrip, state)
        assert np.array_equal(output.bits, bits)
        assert np.allclose(output.amplitudes, np.ones(4))


class TestDepth:
    def test_depth_of_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert circuit.depth() == 1

    def test_depth_of_sequential_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 1)
        assert circuit.depth() == 3

    def test_barrier_increases_depth(self):
        circuit = QuantumCircuit(4)
        circuit.x(0)
        circuit.barrier()
        circuit.x(1)
        assert circuit.depth(respect_barriers=True) == 2
        assert circuit.depth(respect_barriers=False) == 1
