"""Unit tests for the gate registry."""

import pytest

from repro.circuit.gates import (
    ALL_GATES,
    BRANCHING_GATES,
    CLIFFORD_GATES,
    PATH_SIMULABLE_GATES,
    REVERSIBLE_CLASSICAL_GATES,
    gate_spec,
    inverse_gate_name,
    is_classical_reversible,
    is_clifford,
    is_path_simulable,
    validate_arity,
)


class TestGateSpecLookup:
    def test_known_gate_returns_spec(self):
        spec = gate_spec("CSWAP")
        assert spec.name == "CSWAP"
        assert spec.num_qubits == 3

    def test_lookup_is_case_insensitive(self):
        assert gate_spec("cx").name == "CX"
        assert gate_spec("Ccx").name == "CCX"

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gate_spec("RXX")

    def test_every_registered_gate_has_consistent_inverse(self):
        for name, spec in ALL_GATES.items():
            if not spec.unitary and not spec.self_inverse:
                with pytest.raises(ValueError, match="irreversible"):
                    inverse_gate_name(name)
                continue
            assert inverse_gate_name(name) == spec.inverse_name
            # The inverse of the inverse is the original gate.
            assert inverse_gate_name(spec.inverse_name) == name

    def test_self_inverse_gates_map_to_themselves(self):
        for name, spec in ALL_GATES.items():
            if spec.self_inverse:
                assert spec.inverse_name == name


class TestGateClassification:
    def test_classical_reversible_gates(self):
        for name in ("X", "CX", "CCX", "MCX", "SWAP", "CSWAP"):
            assert is_classical_reversible(name)
        for name in ("Z", "H", "S", "T", "Y", "CZ"):
            assert not is_classical_reversible(name)

    def test_clifford_classification(self):
        for name in ("X", "Y", "Z", "H", "S", "CX", "CZ", "SWAP"):
            assert is_clifford(name)
        for name in ("T", "CCX", "CSWAP", "MCX"):
            assert not is_clifford(name)

    def test_path_simulable_includes_diagonal_gates(self):
        assert REVERSIBLE_CLASSICAL_GATES <= PATH_SIMULABLE_GATES
        for name in ("Z", "S", "T", "CZ", "Y"):
            assert is_path_simulable(name)

    def test_hadamard_is_the_only_branching_path_gate(self):
        assert is_path_simulable("H")
        assert BRANCHING_GATES == {"H"}
        assert BRANCHING_GATES <= PATH_SIMULABLE_GATES

    def test_clifford_set_matches_specs(self):
        assert CLIFFORD_GATES == {
            name for name, spec in ALL_GATES.items() if spec.clifford
        }


class TestArityValidation:
    @pytest.mark.parametrize(
        "gate, arity",
        [("X", 1), ("CX", 2), ("CCX", 3), ("CSWAP", 3), ("SWAP", 2)],
    )
    def test_correct_arity_passes(self, gate, arity):
        validate_arity(gate, arity)

    @pytest.mark.parametrize("gate, arity", [("X", 2), ("CX", 3), ("CSWAP", 2)])
    def test_wrong_arity_raises(self, gate, arity):
        with pytest.raises(ValueError):
            validate_arity(gate, arity)

    def test_mcx_needs_at_least_two_qubits(self):
        with pytest.raises(ValueError):
            validate_arity("MCX", 1)
        validate_arity("MCX", 2)
        validate_arity("MCX", 9)

    def test_barrier_accepts_any_arity(self):
        validate_arity("BARRIER", 0)
        validate_arity("BARRIER", 17)
