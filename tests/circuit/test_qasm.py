"""Tests for the OpenQASM 2.0 exporter."""


from repro.circuit import Instruction, QuantumCircuit, to_qasm, write_qasm
from repro.qram import ClassicalMemory, VirtualQRAM


class TestBasicExport:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        qasm = to_qasm(circuit)
        assert qasm.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in qasm
        assert "qreg q[3];" in qasm
        assert "x q[0];" in qasm

    def test_all_direct_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.s(1)
        circuit.t(2)
        circuit.cx(0, 1)
        circuit.cz(1, 2)
        circuit.swap(2, 3)
        circuit.ccx(0, 1, 2)
        circuit.cswap(0, 2, 3)
        qasm = to_qasm(circuit)
        for fragment in (
            "h q[0];",
            "s q[1];",
            "t q[2];",
            "cx q[0], q[1];",
            "cz q[1], q[2];",
            "swap q[2], q[3];",
            "ccx q[0], q[1], q[2];",
            "cswap q[0], q[2], q[3];",
        ):
            assert fragment in qasm

    def test_barriers_preserved(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.barrier()       # synchronises every qubit
        circuit.barrier(0, 1)   # partial barrier
        qasm = to_qasm(circuit)
        assert "barrier q[0], q[1], q[2];" in qasm
        assert "barrier q[0], q[1];" in qasm

    def test_noise_skipped_by_default(self):
        circuit = QuantumCircuit(1)
        circuit.append(Instruction(gate="Z", qubits=(0,), tags=frozenset({"noise"})))
        assert "z q[0];" not in to_qasm(circuit)
        assert "z q[0];" in to_qasm(circuit, include_noise=True)

    def test_register_comments(self):
        memory = ClassicalMemory.random(3, rng=0)
        circuit = VirtualQRAM(memory=memory, qram_width=2).build_circuit()
        qasm = to_qasm(circuit)
        assert "// register sqc_address" in qasm
        assert "// register leaf_data" in qasm

    def test_custom_register_name(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        qasm = to_qasm(circuit, register_name="phys")
        assert "qreg phys[1];" in qasm
        assert "x phys[0];" in qasm


class TestMcxExport:
    def test_small_mcx_downgrades(self):
        circuit = QuantumCircuit(3)
        circuit.add("MCX", 0, 1, 2)
        qasm = to_qasm(circuit)
        assert "ccx q[0], q[1], q[2];" in qasm
        assert "qreg anc" not in qasm

    def test_large_mcx_uses_ancilla_register(self):
        circuit = QuantumCircuit(6)
        circuit.mcx([0, 1, 2, 3], 4)
        qasm = to_qasm(circuit)
        assert "qreg anc[2];" in qasm
        assert "ccx q[0], q[1], anc[0];" in qasm
        # Compute + central + uncompute: 2*(c-2)+1 = 5 Toffolis.
        assert qasm.count("ccx ") == 5

    def test_qram_circuit_exports_cleanly(self):
        memory = ClassicalMemory.random(4, rng=1)
        circuit = VirtualQRAM(memory=memory, qram_width=2).build_circuit()
        qasm = to_qasm(circuit)
        # Every logical gate appears in the output (one line per gate at least,
        # MCX gates may expand into several Toffolis).
        body_lines = [
            line
            for line in qasm.splitlines()
            if line and not line.startswith(("OPENQASM", "include", "qreg", "//"))
        ]
        assert len(body_lines) >= circuit.num_gates


class TestWriteQasm:
    def test_round_trip_to_disk(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        path = tmp_path / "circuit.qasm"
        write_qasm(circuit, str(path))
        assert path.read_text().startswith("OPENQASM 2.0;")
