"""Unit tests for qubit registers and the allocator."""

import pytest

from repro.circuit import QubitAllocator, QubitRegister


class TestQubitRegister:
    def test_basic_properties(self):
        reg = QubitRegister(name="address", qubits=(3, 4, 5))
        assert len(reg) == 3
        assert list(reg) == [3, 4, 5]
        assert reg[1] == 4
        assert 5 in reg
        assert 9 not in reg

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            QubitRegister(name="bad", qubits=(1, 1))


class TestQubitAllocator:
    def test_contiguous_allocation(self):
        alloc = QubitAllocator()
        a = alloc.register("a", 3)
        b = alloc.register("b", 2)
        assert a.qubits == (0, 1, 2)
        assert b.qubits == (3, 4)
        assert alloc.num_qubits == 5

    def test_zero_size_register_allowed(self):
        alloc = QubitAllocator()
        empty = alloc.register("empty", 0)
        assert len(empty) == 0
        assert alloc.num_qubits == 0

    def test_duplicate_name_rejected(self):
        alloc = QubitAllocator()
        alloc.register("a", 1)
        with pytest.raises(ValueError):
            alloc.register("a", 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            QubitAllocator().register("a", -1)

    def test_get_and_contains(self):
        alloc = QubitAllocator()
        alloc.register("bus", 1)
        assert "bus" in alloc
        assert alloc.get("bus").qubits == (0,)
        assert "missing" not in alloc

    def test_registers_property_preserves_order(self):
        alloc = QubitAllocator()
        alloc.register("first", 1)
        alloc.register("second", 2)
        assert list(alloc.registers) == ["first", "second"]
