"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.qram import ClassicalMemory

# Fixed hypothesis profile: example generation is derandomised (derived from
# each test's name, not a random seed), so every CI run and every worker in
# the test matrix explores the identical example sequence.  Deadlines are
# disabled because shared CI runners make wall-clock flaky.  Set
# HYPOTHESIS_PROFILE=dev locally for randomized exploration.
settings.register_profile("repro-ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-ci"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_memory() -> ClassicalMemory:
    """A fixed 8-cell memory used across QRAM tests."""
    return ClassicalMemory.from_values([1, 0, 1, 1, 0, 0, 1, 0])


@pytest.fixture
def tiny_memory() -> ClassicalMemory:
    """A fixed 4-cell memory."""
    return ClassicalMemory.from_values([0, 1, 1, 0])


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


def random_reversible_circuits(
    min_qubits: int = 2, max_qubits: int = 7, max_gates: int = 25
) -> st.SearchStrategy[QuantumCircuit]:
    """Strategy producing random circuits over the classical-reversible gate set.

    These circuits are simulable by both the Feynman-path and statevector
    simulators, which is exactly what the cross-validation property tests need.
    """

    @st.composite
    def build(draw) -> QuantumCircuit:
        num_qubits = draw(st.integers(min_qubits, max_qubits))
        num_gates = draw(st.integers(0, max_gates))
        circuit = QuantumCircuit(num_qubits)
        for _ in range(num_gates):
            gate = draw(
                st.sampled_from(["X", "Z", "CX", "SWAP", "CCX", "CSWAP", "MCX"])
            )
            if gate in ("X", "Z"):
                qubit = draw(st.integers(0, num_qubits - 1))
                circuit.add(gate, qubit)
                continue
            arity = {"CX": 2, "SWAP": 2, "CCX": 3, "CSWAP": 3}.get(gate)
            if gate == "MCX":
                arity = draw(st.integers(2, min(4, num_qubits)))
            if arity > num_qubits:
                continue
            qubits = draw(
                st.lists(
                    st.integers(0, num_qubits - 1),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
            circuit.add(gate, *qubits)
        return circuit

    return build()


def gate_noise_models() -> st.SearchStrategy:
    """Strategy producing random :class:`GateNoiseModel` instances.

    Probabilities are drawn from a small grid (``p_total <= 0.45``, so the
    doubled two-qubit channel stays a valid distribution) so noisy
    trajectories stay non-trivial without drowning every shot in errors.
    """
    from repro.sim import GateNoiseModel, PauliChannel

    probabilities = st.sampled_from([0.0, 0.05, 0.1, 0.15])

    @st.composite
    def build(draw) -> GateNoiseModel:
        p_x = draw(probabilities)
        p_y = draw(probabilities)
        p_z = draw(probabilities)
        two_qubit_factor = draw(st.sampled_from([1.0, 1.0, 2.0]))
        return GateNoiseModel(
            channel=PauliChannel(p_x=p_x, p_y=p_y, p_z=p_z),
            two_qubit_factor=two_qubit_factor,
        )

    return build()


def memory_strategy(max_width: int = 4) -> st.SearchStrategy[ClassicalMemory]:
    """Strategy producing small random classical memories."""

    @st.composite
    def build(draw) -> ClassicalMemory:
        width = draw(st.integers(1, max_width))
        values = draw(
            st.lists(
                st.integers(0, 1), min_size=1 << width, max_size=1 << width
            )
        )
        return ClassicalMemory.from_values(values)

    return build()
