"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.qram import ClassicalMemory


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_memory() -> ClassicalMemory:
    """A fixed 8-cell memory used across QRAM tests."""
    return ClassicalMemory.from_values([1, 0, 1, 1, 0, 0, 1, 0])


@pytest.fixture
def tiny_memory() -> ClassicalMemory:
    """A fixed 4-cell memory."""
    return ClassicalMemory.from_values([0, 1, 1, 0])


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


def random_reversible_circuits(
    min_qubits: int = 2, max_qubits: int = 7, max_gates: int = 25
) -> st.SearchStrategy[QuantumCircuit]:
    """Strategy producing random circuits over the classical-reversible gate set.

    These circuits are simulable by both the Feynman-path and statevector
    simulators, which is exactly what the cross-validation property tests need.
    """

    @st.composite
    def build(draw) -> QuantumCircuit:
        num_qubits = draw(st.integers(min_qubits, max_qubits))
        num_gates = draw(st.integers(0, max_gates))
        circuit = QuantumCircuit(num_qubits)
        for _ in range(num_gates):
            gate = draw(
                st.sampled_from(["X", "Z", "CX", "SWAP", "CCX", "CSWAP", "MCX"])
            )
            if gate in ("X", "Z"):
                qubit = draw(st.integers(0, num_qubits - 1))
                circuit.add(gate, qubit)
                continue
            arity = {"CX": 2, "SWAP": 2, "CCX": 3, "CSWAP": 3}.get(gate)
            if gate == "MCX":
                arity = draw(st.integers(2, min(4, num_qubits)))
            if arity > num_qubits:
                continue
            qubits = draw(
                st.lists(
                    st.integers(0, num_qubits - 1),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
            circuit.add(gate, *qubits)
        return circuit

    return build()


def memory_strategy(max_width: int = 4) -> st.SearchStrategy[ClassicalMemory]:
    """Strategy producing small random classical memories."""

    @st.composite
    def build(draw) -> ClassicalMemory:
        width = draw(st.integers(1, max_width))
        values = draw(
            st.lists(
                st.integers(0, 1), min_size=1 << width, max_size=1 << width
            )
        )
        return ClassicalMemory.from_values(values)

    return build()
