"""Failure-injection tests: the verification tooling must catch broken circuits.

A reproduction is only as trustworthy as its checks.  These tests deliberately
corrupt circuits, memories and embeddings in ways a buggy builder could, and
assert that the corresponding verifier (functional verification, reduced
fidelity, topological-minor check, router equivalence) actually fails -- i.e.
the green test suite is not green by vacuity.
"""

import numpy as np
import pytest

from repro.circuit import Instruction, QuantumCircuit
from repro.mapping import HTreeEmbedding, verify_topological_minor
from repro.qram import ClassicalMemory, VirtualQRAM
from repro.sim import FeynmanPathSimulator
from repro.sim.fidelity import reduced_fidelity, state_fidelity


@pytest.fixture
def architecture(small_memory) -> VirtualQRAM:
    return VirtualQRAM(memory=small_memory, qram_width=2)


class TestCircuitCorruption:
    def _corrupted(self, circuit: QuantumCircuit, index: int, gate: Instruction):
        corrupted = circuit.copy()
        corrupted.instructions.insert(index, gate)
        return corrupted

    def test_stray_x_on_bus_breaks_verification(self, architecture):
        circuit = architecture.build_circuit()
        corrupted = self._corrupted(
            circuit, len(circuit) // 2, Instruction(gate="X", qubits=(architecture.bus_qubit(),))
        )
        output = FeynmanPathSimulator().run(corrupted, architecture.input_state())
        ideal = architecture.ideal_output()
        assert state_fidelity(ideal, output) < 0.5

    def test_stray_x_on_router_breaks_verification(self, architecture):
        circuit = architecture.build_circuit()
        router = circuit.registers["router_L0"][0]
        corrupted = self._corrupted(
            circuit, len(circuit) // 3, Instruction(gate="X", qubits=(router,))
        )
        output = FeynmanPathSimulator().run(corrupted, architecture.input_state())
        ideal = architecture.ideal_output()
        assert reduced_fidelity(ideal, output, architecture.kept_qubits()) < 0.99

    def test_dropping_a_gate_breaks_verification(self, architecture):
        circuit = architecture.build_circuit()
        # Drop the first CSWAP (part of address loading).
        index = next(i for i, g in enumerate(circuit.instructions) if g.gate == "CSWAP")
        corrupted = circuit.copy()
        del corrupted.instructions[index]
        output = FeynmanPathSimulator().run(corrupted, architecture.input_state())
        ideal = architecture.ideal_output()
        assert state_fidelity(ideal, output) < 1.0 - 1e-6

    def test_wrong_memory_contents_detected(self, small_memory):
        """A circuit built for one dataset must not verify against another."""
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        flipped_values = [1 - v for v in small_memory.values]
        wrong = VirtualQRAM(
            memory=ClassicalMemory.from_values(flipped_values), qram_width=2
        )
        output = FeynmanPathSimulator().run(
            architecture.build_circuit(), architecture.input_state()
        )
        assert state_fidelity(wrong.ideal_output(), output) < 0.5


class TestEmbeddingCorruption:
    def test_node_collision_detected(self):
        embedding = HTreeEmbedding(tree_depth=3)
        first, second = list(embedding.node_positions)[:2]
        embedding.node_positions[second] = embedding.node_positions[first]
        report = verify_topological_minor(embedding)
        assert not report.is_topological_minor
        assert any("collide" in problem for problem in report.problems)

    def test_path_through_node_detected(self):
        embedding = HTreeEmbedding(tree_depth=3)
        # Reroute one edge so that it passes straight through another node.
        (edge, path) = next(iter(embedding.edge_paths.items()))
        victim_position = embedding.node_positions[(2, 0)]
        embedding.edge_paths[edge] = [path[0], victim_position, path[-1]]
        report = verify_topological_minor(embedding)
        assert not report.is_topological_minor

    def test_broken_path_detected(self):
        embedding = HTreeEmbedding(tree_depth=2)
        (edge, path) = next(iter(embedding.edge_paths.items()))
        if len(path) < 3:
            # Make it a non-adjacent two-vertex "path".
            embedding.edge_paths[edge] = [path[0], (path[0][0] + 2, path[0][1])]
        else:
            embedding.edge_paths[edge] = [path[0], path[-1]]
        report = verify_topological_minor(embedding)
        assert not report.is_topological_minor


class TestNoiseSanity:
    def test_zero_noise_never_degrades_fidelity(self, architecture):
        from repro.sim import GateNoiseModel, PauliChannel

        noise = GateNoiseModel(PauliChannel())
        result = architecture.run_query(noise, shots=16, rng=0)
        assert np.allclose(result.fidelities, 1.0)

    def test_maximal_noise_destroys_fidelity(self, architecture):
        from repro.sim import GateNoiseModel, PauliChannel

        noise = GateNoiseModel(PauliChannel(p_x=0.34, p_y=0.33, p_z=0.33))
        result = architecture.run_query(noise, shots=64, rng=1)
        assert result.mean_fidelity < 0.2

    def test_fidelity_is_always_a_probability(self, architecture):
        from repro.sim import GateNoiseModel, PauliChannel

        for epsilon in (1e-4, 1e-2, 0.3):
            noise = GateNoiseModel(PauliChannel.depolarizing(epsilon))
            result = architecture.run_query(noise, shots=64, rng=2)
            assert np.all(result.fidelities >= -1e-9)
            assert np.all(result.fidelities <= 1.0 + 1e-9)
