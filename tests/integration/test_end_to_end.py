"""End-to-end integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro.analysis import virtual_z_fidelity_bound
from repro.hardware import GreedySwapRouter, device_noise_model, ibmq_guadalupe_like
from repro.mapping import HTreeEmbedding, MappedQRAM, SwapRouting, TeleportationRouting
from repro.qram import (
    BucketBrigadeQRAM,
    ClassicalMemory,
    SelectSwapQRAM,
    SequentialQueryCircuit,
    VirtualQRAM,
    VirtualQRAMOptions,
)
from repro.sim import FeynmanPathSimulator, GateNoiseModel, PauliChannel


class TestVirtualMemoryScenario:
    """The paper's motivating scenario: query a memory larger than the hardware."""

    def test_large_memory_small_qram(self):
        memory = ClassicalMemory.random(7, rng=99)  # 128 cells
        architecture = VirtualQRAM(memory=memory, qram_width=3)  # 8-cell QRAM
        assert architecture.num_pages == 16
        # Physical qubits grow with 2^m, not with the memory size 2^n.
        assert architecture.build_circuit().num_qubits < 40
        assert architecture.verify()

    def test_grover_style_oracle_workload(self):
        """A Grover-style workload: the query marks the addresses storing 1."""
        marked = {3, 11, 17}
        memory = ClassicalMemory.from_function(
            lambda i: 1 if i in marked else 0, address_width=5
        )
        architecture = VirtualQRAM(memory=memory, qram_width=3)
        output = architecture.simulate()
        addresses = output.register_values(architecture.address_qubits())
        bus = output.bits[:, architecture.bus_qubit()]
        flagged = {int(a) for a, b in zip(addresses, bus) if b}
        assert flagged == marked

    def test_partial_superposition_query(self):
        """Querying a non-uniform superposition preserves amplitudes."""
        memory = ClassicalMemory.random(4, rng=5)
        architecture = VirtualQRAM(memory=memory, qram_width=2)
        amplitudes = {1: 0.6, 9: 0.8j}
        state = architecture.input_state(amplitudes)
        output = architecture.simulate(state)
        produced = output.as_dict()
        expected = architecture.ideal_output(state).as_dict()
        assert produced.keys() == expected.keys()
        for key in expected:
            assert produced[key] == pytest.approx(expected[key])


class TestNoiseTrendIntegration:
    def test_architecture_ranking_under_z_noise(self):
        """Figure 9's qualitative ranking at a representative size."""
        memory = ClassicalMemory.random(5, rng=17)
        noise = GateNoiseModel(PauliChannel.phase_flip(2e-3))
        fidelities = {}
        for name, cls in (
            ("ours", VirtualQRAM),
            ("bb", BucketBrigadeQRAM),
            ("ss", SelectSwapQRAM),
        ):
            architecture = cls(memory=memory, qram_width=5)
            fidelities[name] = architecture.run_query(noise, shots=192, rng=3).mean_fidelity
        assert fidelities["ours"] > fidelities["ss"]
        assert fidelities["bb"] > fidelities["ss"]

    def test_virtual_qram_z_vs_x_asymmetry(self):
        """Our architecture tolerates Z noise much better than X noise."""
        memory = ClassicalMemory.random(6, rng=21)
        architecture = VirtualQRAM(memory=memory, qram_width=6)
        epsilon = 2e-3
        z_result = architecture.run_query(
            GateNoiseModel(PauliChannel.phase_flip(epsilon)), shots=192, rng=1
        )
        x_result = architecture.run_query(
            GateNoiseModel(PauliChannel.bit_flip(epsilon)), shots=192, rng=2
        )
        assert z_result.mean_fidelity > x_result.mean_fidelity + 0.1

    def test_sqc_width_hurts_more_than_qram_width(self):
        """Figure 11's conclusion: growing k damages fidelity faster than growing m."""
        epsilon = 3e-3
        noise = GateNoiseModel(PauliChannel.phase_flip(epsilon))
        memory_large_m = ClassicalMemory.random(5, rng=2)
        memory_large_k = ClassicalMemory.random(5, rng=2)
        large_m = VirtualQRAM(memory=memory_large_m, qram_width=4)   # m=4, k=1
        large_k = VirtualQRAM(memory=memory_large_k, qram_width=1)   # m=1, k=4
        fidelity_large_m = large_m.run_query(noise, shots=256, rng=4).mean_fidelity
        fidelity_large_k = large_k.run_query(noise, shots=256, rng=4).mean_fidelity
        assert fidelity_large_m > fidelity_large_k

    def test_simulated_fidelity_not_wildly_below_bound(self):
        """The gate-based Monte-Carlo fidelity should track the analytic bound's
        scale (the bound is for the qubit-based model, so only the order of
        magnitude of the infidelity is compared)."""
        epsilon = 1e-4
        memory = ClassicalMemory.random(4, rng=13)
        architecture = VirtualQRAM(memory=memory, qram_width=3)
        result = architecture.run_query(
            GateNoiseModel(PauliChannel.phase_flip(epsilon)), shots=256, rng=11
        )
        bound = virtual_z_fidelity_bound(epsilon, 3, 1)
        assert result.mean_fidelity >= bound - 0.05


class TestCompilationPipeline:
    def test_build_map_route_simulate(self):
        """Full pipeline: build, embed in 2D, route on hardware, simulate noisily."""
        memory = ClassicalMemory.random(3, rng=8)
        architecture = VirtualQRAM(memory=memory, qram_width=2)
        circuit = architecture.build_circuit()

        # 2D-grid embedding and routing-overhead accounting.
        embedding = HTreeEmbedding(tree_depth=2)
        mapped = MappedQRAM(circuit, embedding)
        overheads = mapped.compare_schemes([SwapRouting(), TeleportationRouting()])
        assert overheads[0].logical_depth == overheads[1].logical_depth

        # Device routing and noisy simulation.
        device = ibmq_guadalupe_like()
        routed = GreedySwapRouter(device).route(circuit)
        simulator = FeynmanPathSimulator()
        logical_input = architecture.input_state()
        physical_input = routed.map_state(logical_input, final=False)
        physical_ideal = routed.map_state(
            architecture.ideal_output(logical_input), final=True
        )
        keep = routed.physical_qubits(architecture.kept_qubits(), final=True)
        result = simulator.query_fidelities(
            routed.circuit,
            physical_input,
            device_noise_model(device, error_reduction_factor=1000),
            shots=64,
            keep_qubits=keep,
            ideal_output=physical_ideal,
            rng=np.random.default_rng(0),
        )
        assert result.mean_fidelity > 0.9

    def test_options_do_not_change_semantics_through_pipeline(self):
        memory = ClassicalMemory.random(4, rng=19)
        for options in (VirtualQRAMOptions.raw(), VirtualQRAMOptions.all_enabled()):
            architecture = VirtualQRAM(memory=memory, qram_width=2, options=options)
            assert architecture.verify()

    def test_sqc_and_virtual_agree_on_every_address(self):
        memory = ClassicalMemory.random(4, rng=23)
        sqc = SequentialQueryCircuit(memory=memory)
        virtual = VirtualQRAM(memory=memory, qram_width=2)
        simulator = FeynmanPathSimulator()
        for address in range(memory.size):
            sqc_out = simulator.run(sqc.build_circuit(), sqc.input_state({address: 1.0}))
            virtual_out = simulator.run(
                virtual.build_circuit(), virtual.input_state({address: 1.0})
            )
            assert int(sqc_out.bits[0, sqc.bus_qubit()]) == int(
                virtual_out.bits[0, virtual.bus_qubit()]
            )
