"""The fingerprint contract: canonical, versioned, input-sensitive.

A fingerprint must change when -- and only when -- an input that can change
the run's records changes: any spec field, the seed, the shot count, the
engine, the resolved router, or either schema version.
"""

from dataclasses import replace

import pytest

from repro.cache import fingerprint as fp_module
from repro.cache.fingerprint import (
    canonical_run_payload,
    canonical_spec,
    run_fingerprint,
)
from repro.scenarios import ScenarioSpec, get_scenario

SPEC = ScenarioSpec(
    name="fp-spec",
    description="fingerprint test spec",
    qram_width=2,
    router="greedy-swap",
)


def _fp(spec=SPEC, seed=7, shots=16, engine="feynman-tape"):
    return run_fingerprint(spec, seed=seed, shots=shots, engine=engine)


def test_fingerprint_is_stable_hex():
    first = _fp()
    assert first == _fp()
    assert len(first) == 64
    assert set(first) <= set("0123456789abcdef")


def test_fingerprint_depends_on_every_run_input():
    base = _fp()
    assert _fp(seed=8) != base
    assert _fp(shots=17) != base
    assert _fp(engine="feynman-interp") != base
    assert _fp(spec=replace(SPEC, router="lookahead")) != base
    assert _fp(spec=replace(SPEC, qram_width=3)) != base
    assert _fp(spec=replace(SPEC, idle_error=None)) != base
    assert (
        _fp(spec=replace(SPEC, error_reduction_factors=(1.0, 10.0))) != base
    )


def test_fingerprint_ignores_nothing_but_is_name_sensitive():
    """Even the registry name participates: records carry it."""
    renamed = SPEC.variant("fp-spec-2", SPEC.description)
    assert _fp(spec=renamed) != _fp()


def test_unresolved_router_is_refused():
    unresolved = ScenarioSpec(name="no-router", description="x", qram_width=1)
    assert unresolved.router is None
    with pytest.raises(ValueError, match="router=None"):
        run_fingerprint(unresolved, seed=7, shots=16, engine="feynman-tape")


def test_schema_versions_are_mixed_in(monkeypatch):
    base = _fp()
    monkeypatch.setattr(fp_module, "CACHE_SCHEMA_VERSION", 999)
    bumped_cache = _fp()
    assert bumped_cache != base
    monkeypatch.setattr(fp_module, "RECORD_SCHEMA_VERSION", 999)
    assert _fp() != bumped_cache


def test_canonical_spec_is_json_safe():
    payload = canonical_spec(get_scenario("htree-swap-m3"))
    assert payload["name"] == "htree-swap-m3"
    assert payload["error_reduction_factors"] == [1.0, 10.0, 100.0]
    assert all(
        isinstance(value, (str, int, float, bool, list, type(None)))
        for value in payload.values()
    )


def test_canonical_payload_names_resolved_inputs():
    payload = canonical_run_payload(SPEC, seed=7, shots=16, engine="feynman-tape")
    assert payload["seed"] == 7
    assert payload["shots"] == 16
    assert payload["engine"] == "feynman-tape"
    assert payload["spec"]["router"] == "greedy-swap"
    assert "cache_schema_version" in payload
    assert "record_schema_version" in payload
