"""The on-disk store: atomic commits, corruption-tolerant reads."""

import json
import os

from repro.cache import CACHE_SCHEMA_VERSION, ResultCache, resolve_cache
from repro.cache.store import CACHE_DIR_ENV_VAR, default_cache_dir
from repro.scenarios.record import ScenarioRecord

FP = "ab" + "0" * 62
OTHER_FP = "cd" + "1" * 62


def _record(**overrides) -> ScenarioRecord:
    base = dict(
        scenario="s",
        architecture="virtual",
        m=2,
        k=0,
        mapping="none",
        routing="-",
        router="greedy-swap",
        device="reference",
        num_qubits=5,
        logical_gates=10,
        executed_gates=10,
        extra_swaps=0,
        link_operations=0,
        measurements=0,
        logical_depth=4,
        executed_depth=4,
        idle_error=0.0,
        readout_error=0.0,
        error_reduction_factor=1.0,
        shots=16,
        engine="feynman-tape",
        fidelity=0.5,
        std_error=0.01,
    )
    base.update(overrides)
    return ScenarioRecord(**base)


class TestRoundTrip:
    def test_put_then_get_returns_equal_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = [_record(), _record(error_reduction_factor=10.0, fidelity=0.9)]
        path = cache.put(FP, records)
        assert path == cache.path_for(FP)
        assert path.is_file()
        assert cache.get(FP) == records

    def test_layout_shards_by_fingerprint_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.path_for(FP) == tmp_path / FP[:2] / f"{FP}.json"

    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(FP) is None
        assert FP not in cache
        assert cache.fingerprints() == []

    def test_fingerprints_lists_committed_documents(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        cache.put(OTHER_FP, [_record()])
        assert cache.fingerprints() == sorted([FP, OTHER_FP])

    def test_put_is_idempotent_and_byte_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        first = cache.path_for(FP).read_bytes()
        cache.put(FP, [_record()])
        assert cache.path_for(FP).read_bytes() == first

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestCorruptionTolerance:
    def _commit(self, tmp_path) -> ResultCache:
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        return cache

    def test_truncated_json_is_a_miss(self, tmp_path):
        cache = self._commit(tmp_path)
        path = cache.path_for(FP)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.get(FP) is None

    def test_non_json_garbage_is_a_miss(self, tmp_path):
        cache = self._commit(tmp_path)
        cache.path_for(FP).write_bytes(b"\x00\xff not json")
        assert cache.get(FP) is None

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        cache = self._commit(tmp_path)
        payload = json.loads(cache.path_for(FP).read_text())
        payload["schema_version"] = CACHE_SCHEMA_VERSION + 1
        cache.path_for(FP).write_text(json.dumps(payload))
        assert cache.get(FP) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        """A document renamed to another address must not be served."""
        cache = self._commit(tmp_path)
        target = cache.path_for(OTHER_FP)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.path_for(FP), target)
        assert cache.get(OTHER_FP) is None

    def test_invalid_record_rows_are_a_miss(self, tmp_path):
        cache = self._commit(tmp_path)
        payload = json.loads(cache.path_for(FP).read_text())
        payload["records"][0]["surprise"] = 1
        cache.path_for(FP).write_text(json.dumps(payload))
        assert cache.get(FP) is None

    def test_non_dict_document_is_a_miss(self, tmp_path):
        cache = self._commit(tmp_path)
        cache.path_for(FP).write_text(json.dumps([1, 2, 3]))
        assert cache.get(FP) is None

    def test_records_not_a_list_is_a_miss(self, tmp_path):
        cache = self._commit(tmp_path)
        payload = json.loads(cache.path_for(FP).read_text())
        payload["records"] = {"oops": 1}
        cache.path_for(FP).write_text(json.dumps(payload))
        assert cache.get(FP) is None

    def test_corrupt_neighbour_does_not_hide_good_documents(self, tmp_path):
        cache = self._commit(tmp_path)
        cache.put(OTHER_FP, [_record()])
        cache.path_for(FP).write_text("garbage")
        assert cache.fingerprints() == [OTHER_FP]


class TestResolveCache:
    def test_none_without_env_disables(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert resolve_cache(None) is None

    def test_none_with_env_enables_at_env_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        cache = resolve_cache(None)
        assert cache is not None
        assert cache.root == tmp_path
        assert default_cache_dir() == tmp_path

    def test_booleans_force_on_and_off(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert resolve_cache(False) is None
        assert resolve_cache(True).root == tmp_path

    def test_explicit_path_and_instance_pass_through(self, tmp_path):
        by_path = resolve_cache(tmp_path)
        assert by_path.root == tmp_path
        assert resolve_cache(by_path) is by_path
