"""The on-disk store: atomic commits, corruption-tolerant reads."""

import json
import os

from repro.cache import CACHE_SCHEMA_VERSION, ResultCache, resolve_cache
from repro.cache.store import CACHE_DIR_ENV_VAR, default_cache_dir
from repro.scenarios.record import ScenarioRecord

FP = "ab" + "0" * 62
OTHER_FP = "cd" + "1" * 62


def _record(**overrides) -> ScenarioRecord:
    base = dict(
        scenario="s",
        architecture="virtual",
        m=2,
        k=0,
        mapping="none",
        routing="-",
        router="greedy-swap",
        device="reference",
        num_qubits=5,
        logical_gates=10,
        executed_gates=10,
        extra_swaps=0,
        link_operations=0,
        measurements=0,
        logical_depth=4,
        executed_depth=4,
        idle_error=0.0,
        readout_error=0.0,
        error_reduction_factor=1.0,
        shots=16,
        engine="feynman-tape",
        fidelity=0.5,
        std_error=0.01,
    )
    base.update(overrides)
    return ScenarioRecord(**base)


class TestRoundTrip:
    def test_put_then_get_returns_equal_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = [_record(), _record(error_reduction_factor=10.0, fidelity=0.9)]
        path = cache.put(FP, records)
        assert path == cache.path_for(FP)
        assert path.is_file()
        assert cache.get(FP) == records

    def test_layout_shards_by_fingerprint_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.path_for(FP) == tmp_path / FP[:2] / f"{FP}.json"

    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(FP) is None
        assert FP not in cache
        assert cache.fingerprints() == []

    def test_fingerprints_lists_committed_documents(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        cache.put(OTHER_FP, [_record()])
        assert cache.fingerprints() == sorted([FP, OTHER_FP])

    def test_put_is_idempotent_and_byte_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        first = cache.path_for(FP).read_bytes()
        cache.put(FP, [_record()])
        assert cache.path_for(FP).read_bytes() == first

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestCorruptionTolerance:
    def _commit(self, tmp_path) -> ResultCache:
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        return cache

    def _commit_json_only(self, tmp_path) -> ResultCache:
        """Commit, then drop the binary artefact to isolate the JSON path."""
        cache = self._commit(tmp_path)
        cache.binary_path_for(FP).unlink()
        return cache

    def test_truncated_json_is_a_miss(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        path = cache.path_for(FP)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.get(FP) is None

    def test_non_json_garbage_is_a_miss(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        cache.path_for(FP).write_bytes(b"\x00\xff not json")
        assert cache.get(FP) is None

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        payload = json.loads(cache.path_for(FP).read_text())
        payload["schema_version"] = CACHE_SCHEMA_VERSION + 1
        cache.path_for(FP).write_text(json.dumps(payload))
        assert cache.get(FP) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        """A document renamed to another address must not be served."""
        cache = self._commit(tmp_path)
        target = cache.path_for(OTHER_FP)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.path_for(FP), target)
        assert cache.get(OTHER_FP) is None

    def test_renamed_binary_artefact_is_a_miss(self, tmp_path):
        """The .rrec tag pins the fingerprint: renaming must not serve it."""
        cache = self._commit(tmp_path)
        target = cache.binary_path_for(OTHER_FP)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.binary_path_for(FP), target)
        assert cache.get(OTHER_FP) is None
        assert cache.get_binary(OTHER_FP) is None
        assert OTHER_FP not in cache

    def test_invalid_record_rows_are_a_miss(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        payload = json.loads(cache.path_for(FP).read_text())
        payload["records"][0]["surprise"] = 1
        cache.path_for(FP).write_text(json.dumps(payload))
        assert cache.get(FP) is None

    def test_non_dict_document_is_a_miss(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        cache.path_for(FP).write_text(json.dumps([1, 2, 3]))
        assert cache.get(FP) is None

    def test_records_not_a_list_is_a_miss(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        payload = json.loads(cache.path_for(FP).read_text())
        payload["records"] = {"oops": 1}
        cache.path_for(FP).write_text(json.dumps(payload))
        assert cache.get(FP) is None

    def test_corrupt_neighbour_does_not_hide_good_documents(self, tmp_path):
        cache = self._commit_json_only(tmp_path)
        cache.put(OTHER_FP, [_record()])
        cache.path_for(FP).write_text("garbage")
        assert cache.fingerprints() == [OTHER_FP]


class TestBinaryBackend:
    def _records(self):
        return [_record(), _record(error_reduction_factor=10.0, fidelity=0.9)]

    def test_put_writes_both_artefacts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, self._records())
        assert cache.path_for(FP).is_file()
        assert cache.binary_path_for(FP).is_file()
        assert cache.binary_path_for(FP) == tmp_path / FP[:2] / f"{FP}.rrec"

    def test_binary_artefact_is_tagged_with_the_fingerprint(self, tmp_path):
        from repro.records import RecordFile

        cache = ResultCache(tmp_path)
        cache.put(FP, self._records())
        with RecordFile(cache.binary_path_for(FP)) as record_file:
            assert record_file.tag == FP
            assert record_file.records() == self._records()

    def test_binary_survives_json_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = self._records()
        cache.put(FP, records)
        cache.path_for(FP).write_text("garbage")
        assert cache.get(FP) == records
        assert FP in cache
        assert cache.fingerprints() == [FP]

    def test_corrupt_binary_falls_back_to_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = self._records()
        cache.put(FP, records)
        path = cache.binary_path_for(FP)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # break the CRC footer
        path.write_bytes(bytes(blob))
        assert cache.get(FP) == records

    def test_both_artefacts_corrupt_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, self._records())
        cache.path_for(FP).write_text("garbage")
        cache.binary_path_for(FP).write_bytes(b"\x00" * 64)
        assert cache.get(FP) is None
        assert cache.get_binary(FP) is None
        assert FP not in cache

    def test_get_binary_serves_the_committed_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(FP, self._records())
        assert cache.get_binary(FP) == cache.binary_path_for(FP).read_bytes()

    def test_get_binary_heals_from_the_json_document(self, tmp_path):
        """A pre-binary cache (JSON only) is re-encoded and served."""
        cache = ResultCache(tmp_path)
        cache.put(FP, self._records())
        expected = cache.binary_path_for(FP).read_bytes()
        cache.binary_path_for(FP).unlink()
        assert cache.get_binary(FP) == expected
        assert cache.binary_path_for(FP).is_file()

    def test_put_shards_commits_the_merged_artefact(self, tmp_path):
        from repro.records import write_records

        cache = ResultCache(tmp_path)
        records = self._records()
        first = tmp_path / "shard-0.rrec"
        second = tmp_path / "shard-1.rrec"
        write_records(first, records[:1])
        write_records(second, records[1:])
        path = cache.put_shards(FP, [first, second])
        assert path == cache.binary_path_for(FP)
        assert cache.get(FP) == records
        # Byte-identical to the record-list commit of the same run.
        direct = ResultCache(tmp_path / "direct")
        direct.put(FP, records)
        assert path.read_bytes() == direct.binary_path_for(FP).read_bytes()
        assert cache.path_for(FP).read_bytes() == direct.path_for(FP).read_bytes()


class TestResolveCache:
    def test_none_without_env_disables(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert resolve_cache(None) is None

    def test_none_with_env_enables_at_env_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        cache = resolve_cache(None)
        assert cache is not None
        assert cache.root == tmp_path
        assert default_cache_dir() == tmp_path

    def test_booleans_force_on_and_off(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert resolve_cache(False) is None
        assert resolve_cache(True).root == tmp_path

    def test_explicit_path_and_instance_pass_through(self, tmp_path):
        by_path = resolve_cache(tmp_path)
        assert by_path.root == tmp_path
        assert resolve_cache(by_path) is by_path
