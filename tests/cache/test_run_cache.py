"""``run_scenario`` + cache: warm hits are free, bit-identical, RNG-silent.

The acceptance property of the tentpole: a warm cache hit for any builtin
scenario returns records bit-identical to a fresh sharded run -- same
fingerprint, same JSON bytes -- without executing the engine and without
consuming any randomness.
"""

import json

import pytest

import repro.scenarios.run as run_module
from repro.cache import ResultCache, run_fingerprint
from repro.cache.store import CACHE_DIR_ENV_VAR
from repro.experiments.__main__ import main
from repro.experiments.export import records_to_json
from repro.scenarios import get_scenario, run_scenario

SEED = 11
SHOTS = 24


@pytest.fixture()
def cache(tmp_path):
    """A fresh cache rooted in the test's temp dir."""
    return ResultCache(tmp_path / "cache")


def _forbid_execution(monkeypatch):
    """Make any engine execution (sweep dispatch) a hard failure."""

    def explode(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("warm cache hit must not execute the sweep")

    monkeypatch.setattr(run_module.SweepRunner, "map_shards", explode)


class TestWarmHits:
    def test_warm_hit_is_bit_identical_and_engine_free(self, cache, monkeypatch):
        fresh = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        _forbid_execution(monkeypatch)
        warm = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        assert warm == fresh

    def test_warm_hit_json_bytes_match_fresh_run(self, cache, tmp_path, monkeypatch):
        fresh = run_scenario(
            "htree-teleport-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        records_to_json(fresh, tmp_path / "fresh.json")
        _forbid_execution(monkeypatch)
        warm = run_scenario(
            "htree-teleport-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        records_to_json(warm, tmp_path / "warm.json")
        assert (tmp_path / "warm.json").read_bytes() == (
            tmp_path / "fresh.json"
        ).read_bytes()

    def test_warm_hit_consumes_no_rng(self, cache):
        """A cached read between two fresh runs cannot shift their streams."""
        a = run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache)
        run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache)
        b = run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=False)
        assert a == b

    def test_sharded_fresh_run_matches_serial_warm_hit(self, cache):
        serial = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        sharded = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED, workers=4, shard_size=8, cache=cache
        )
        assert serial == sharded


class TestKeying:
    def test_different_inputs_do_not_collide(self, cache):
        run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache)
        other = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED + 1, workers=1, cache=cache
        )
        fresh = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED + 1, workers=1, cache=False
        )
        assert other == fresh
        assert len(cache.fingerprints()) == 2

    def test_fingerprint_matches_resolve_run(self, cache):
        from dataclasses import replace

        from repro.hardware.router import get_default_router

        run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache)
        spec = replace(get_scenario("ideal-m3"), router=get_default_router())
        expected = run_fingerprint(
            spec, seed=SEED, shots=SHOTS, engine="feynman-tape"
        )
        assert cache.fingerprints() == [expected]

    def test_records_stamp_resolved_engine_and_router(self, cache):
        records = run_scenario(
            "ideal-m3", shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        for record in records:
            assert record["engine"] == "feynman-tape"
            assert record["router"] == "greedy-swap"
        cached = cache.get(cache.fingerprints()[0])
        assert [r["router"] for r in cached] == ["greedy-swap"] * len(records)


class TestCli:
    def _run(self, tmp_path, out, *extra):
        return main(
            [
                "scenario",
                "ideal-m3",
                "--shots",
                str(SHOTS),
                "--seed",
                str(SEED),
                "--workers",
                "1",
                "--out",
                str(tmp_path / out),
                *extra,
            ]
        )

    def test_cache_flag_round_trips_artefacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cli-cache"))
        assert self._run(tmp_path, "cold", "--cache") == 0
        _forbid_execution(monkeypatch)
        assert self._run(tmp_path, "warm", "--cache") == 0
        cold = (tmp_path / "cold" / "scenario_ideal-m3.json").read_bytes()
        warm = (tmp_path / "warm" / "scenario_ideal-m3.json").read_bytes()
        assert cold == warm

    def test_env_var_alone_enables_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "env-cache"))
        assert self._run(tmp_path, "cold") == 0
        assert ResultCache(tmp_path / "env-cache").fingerprints()

    def test_no_cache_flag_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "off-cache"))
        assert self._run(tmp_path, "cold", "--no-cache") == 0
        assert not (tmp_path / "off-cache").exists()

    def test_cache_and_no_cache_conflict(self, tmp_path):
        with pytest.raises(SystemExit):
            self._run(tmp_path, "x", "--cache", "--no-cache")
