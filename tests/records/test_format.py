"""The ``.rrec`` container: layout, round trips, writer/reader contracts."""

import math
import struct

import pytest

from repro.records import (
    MAGIC,
    RECORD_FORMAT_VERSION,
    RecordFile,
    RecordFormatError,
    RecordWriter,
    read_records,
    schema_fields,
    write_records,
)
from repro.records.format import (
    FIELD_WIDTH,
    HEADER_STRUCT,
    TYPE_FLOAT,
    TYPE_INT,
    TYPE_STR,
    encode_header,
    row_struct,
)
from repro.scenarios.record import RECORD_SCHEMA_VERSION, ScenarioRecord
from repro.scenarios.spec import available_scenarios


def _record(**overrides) -> ScenarioRecord:
    base = dict(
        scenario="s",
        architecture="virtual",
        m=2,
        k=0,
        mapping="none",
        routing="-",
        router="greedy-swap",
        device="reference",
        num_qubits=5,
        logical_gates=10,
        executed_gates=10,
        extra_swaps=0,
        link_operations=0,
        measurements=0,
        logical_depth=4,
        executed_depth=4,
        idle_error=0.0,
        readout_error=0.0,
        error_reduction_factor=1.0,
        shots=16,
        engine="feynman-tape",
        fidelity=0.5,
        std_error=0.01,
    )
    base.update(overrides)
    return ScenarioRecord(**base)


class TestSchema:
    def test_schema_mirrors_the_dataclass(self):
        from dataclasses import fields

        table = schema_fields()
        assert [name for name, _ in table] == [
            field.name for field in fields(ScenarioRecord)
        ]
        codes = {TYPE_INT, TYPE_FLOAT, TYPE_STR}
        assert all(code in codes for _, code in table)

    def test_row_struct_width_is_eight_bytes_per_field(self):
        assert row_struct().size == FIELD_WIDTH * len(schema_fields())

    def test_header_layout(self):
        header = encode_header(7, "label")
        magic, fmt, schema, count, reserved, rows = HEADER_STRUCT.unpack_from(
            header, 0
        )
        assert magic == MAGIC
        assert fmt == RECORD_FORMAT_VERSION
        assert schema == RECORD_SCHEMA_VERSION
        assert count == len(schema_fields())
        assert reserved == 0
        assert rows == 7
        (tag_length,) = struct.unpack_from("<H", header, HEADER_STRUCT.size)
        tag_start = HEADER_STRUCT.size + 2
        assert header[tag_start : tag_start + tag_length] == b"label"

    def test_oversized_tag_rejected(self):
        with pytest.raises(RecordFormatError, match="tag"):
            encode_header(0, "x" * 70000)


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        records = [_record(), _record(fidelity=0.25, m=3)]
        path = write_records(tmp_path / "a.rrec", records)
        assert read_records(path) == records

    def test_empty_file_round_trips_to_empty_list(self, tmp_path):
        path = write_records(tmp_path / "empty.rrec", [])
        assert read_records(path) == []

    def test_nan_floats_round_trip_bit_exact(self, tmp_path):
        records = [_record(fidelity=math.nan, std_error=math.nan)]
        path = write_records(tmp_path / "nan.rrec", records)
        decoded = read_records(path)[0]
        assert math.isnan(decoded.fidelity)
        assert decoded == records[0]

    def test_tag_round_trips(self, tmp_path):
        path = write_records(tmp_path / "t.rrec", [_record()], tag="fp-123")
        with RecordFile(path) as record_file:
            assert record_file.tag == "fp-123"

    def test_bytes_are_a_pure_function_of_records_and_tag(self, tmp_path):
        records = [_record(), _record(fidelity=0.9)]
        first = write_records(tmp_path / "x.rrec", records, tag="t")
        second = write_records(tmp_path / "y.rrec", records, tag="t")
        assert first.read_bytes() == second.read_bytes()

    def test_mappings_are_validated_through_from_dict(self, tmp_path):
        record = _record()
        path = write_records(tmp_path / "m.rrec", [record.as_dict()])
        assert read_records(path) == [record]

    def test_full_builtin_catalog_round_trips(self, tmp_path):
        """decode(encode(records)) is the identity for every registered
        scenario's sweep records -- the tentpole acceptance pin."""
        from repro.scenarios import run_scenario

        names = available_scenarios()
        assert len(names) >= 18
        records = []
        for name in names:
            records.extend(run_scenario(name, shots=4, workers=1, cache=False))
        path = write_records(tmp_path / "catalog.rrec", records)
        decoded = read_records(path)
        assert decoded == records
        # Bit-exact floats, not merely NaN-aware equality.
        for ours, theirs in zip(decoded, records):
            for name, code in schema_fields():
                if code == TYPE_FLOAT:
                    packed = struct.pack("<d", ours[name])
                    assert packed == struct.pack("<d", theirs[name])


class TestWriter:
    def test_append_matches_write_records(self, tmp_path):
        records = [_record(), _record(scenario="other"), _record(m=4)]
        bulk = write_records(tmp_path / "bulk.rrec", records)
        with RecordWriter(tmp_path / "one.rrec") as writer:
            for record in records:
                writer.append(record)
        assert bulk.read_bytes() == (tmp_path / "one.rrec").read_bytes()

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = RecordWriter(tmp_path / "w.rrec")
        writer.close()
        with pytest.raises(RecordFormatError, match="closed"):
            writer.append(_record())
        assert writer.close() == tmp_path / "w.rrec"  # idempotent

    def test_out_of_int64_range_value_rejected(self, tmp_path):
        with RecordWriter(tmp_path / "w.rrec") as writer:
            with pytest.raises(RecordFormatError, match="packed row format"):
                writer.append(_record(shots=2**63))

    def test_stale_schema_version_rejected(self, tmp_path):
        record = _record()
        object.__setattr__(record, "schema_version", RECORD_SCHEMA_VERSION + 1)
        with RecordWriter(tmp_path / "w.rrec") as writer:
            with pytest.raises(RecordFormatError, match="schema_version"):
                writer.append(record)

    def test_invalid_mapping_rejected(self, tmp_path):
        with RecordWriter(tmp_path / "w.rrec") as writer:
            with pytest.raises(RecordFormatError, match="unpackable record"):
                writer.append({"surprise": 1})

    def test_crashed_writer_leaves_an_unreadable_file(self, tmp_path):
        path = tmp_path / "crash.rrec"
        with pytest.raises(RuntimeError):
            with RecordWriter(path) as writer:
                writer.append(_record())
                raise RuntimeError("boom")
        with pytest.raises(RecordFormatError):
            read_records(path)


class TestReaderProtocol:
    def _path(self, tmp_path):
        records = [_record(m=i + 1) for i in range(5)]
        return write_records(tmp_path / "seq.rrec", records), records

    def test_sequence_protocol(self, tmp_path):
        path, records = self._path(tmp_path)
        with RecordFile(path) as record_file:
            assert len(record_file) == 5
            assert record_file[0] == records[0]
            assert record_file[-1] == records[-1]
            assert record_file[1:3] == records[1:3]
            assert list(record_file) == records
            with pytest.raises(IndexError):
                record_file[5]

    def test_rows_matrix_shape(self, tmp_path):
        path, records = self._path(tmp_path)
        with RecordFile(path) as record_file:
            assert record_file.rows.shape == (5, len(schema_fields()))

    def test_tobytes_returns_the_file_bytes(self, tmp_path):
        path, _ = self._path(tmp_path)
        with RecordFile(path) as record_file:
            assert record_file.tobytes() == path.read_bytes()

    def test_close_releases_the_mapping(self, tmp_path):
        path, _ = self._path(tmp_path)
        record_file = RecordFile(path)
        record_file.close()
        record_file.close()  # idempotent
