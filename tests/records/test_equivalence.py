"""Differential pins: binary and JSON paths agree, merge equals serial.

Three equivalences anchor the record store:

* ``decode(encode(records)) == records`` for arbitrary (hypothesis-drawn)
  records, NaN included -- and agrees with the JSON round trip.
* The memory-mapped k-way shard merge is *byte*-identical to a serial
  re-encode of the concatenated records, for any shard partition -- which
  also makes it record-identical to the JSON list concatenation it
  replaced.
* A scenario sweep's binary artefact is bit-identical across worker
  counts, and a warm binary-cache hit byte-matches the producing run.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ResultCache
from repro.records import RecordFile, merge_record_files, read_records, write_records
from repro.scenarios import run_scenario
from repro.scenarios.record import ScenarioRecord

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=24
)
_counts = st.integers(min_value=0, max_value=2**62)
#: NaN explicitly allowed: an all-rejected postselected point's fidelity is
#: NaN and must survive both serializations.
_floats = st.floats(allow_nan=True, allow_infinity=False, width=64)

#: Arbitrary records within the packable domain (ints fit int64).
records = st.builds(
    ScenarioRecord,
    scenario=_names,
    architecture=_names,
    m=st.integers(min_value=1, max_value=12),
    k=_counts,
    mapping=_names,
    routing=_names,
    router=_names,
    device=_names,
    num_qubits=_counts,
    logical_gates=_counts,
    executed_gates=_counts,
    extra_swaps=_counts,
    link_operations=_counts,
    measurements=_counts,
    logical_depth=_counts,
    executed_depth=_counts,
    idle_error=_floats,
    readout_error=_floats,
    error_reduction_factor=_floats,
    shots=st.integers(min_value=1, max_value=10**6),
    engine=_names,
    fidelity=_floats,
    std_error=_floats,
    kept_fraction=_floats,
)

record_lists = st.lists(records, min_size=0, max_size=12)


@settings(max_examples=100, deadline=None)
@given(record_lists)
def test_binary_round_trip_matches_json_round_trip(tmp_path_factory, batch):
    tmp_path = tmp_path_factory.mktemp("roundtrip")
    path = write_records(tmp_path / "b.rrec", batch)
    via_binary = read_records(path)
    via_json = [ScenarioRecord.from_json(record.to_json()) for record in batch]
    assert via_binary == batch
    assert via_json == batch
    assert via_binary == via_json


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_shard_merge_is_byte_identical_to_serial_encode(tmp_path_factory, data):
    """For ANY shard partition (empty shards included), the mmap merge's
    output bytes equal one serial ``write_records`` of the concatenation --
    and therefore its records equal the JSON list concatenation."""
    tmp_path = tmp_path_factory.mktemp("merge")
    batch = data.draw(record_lists)
    # Draw a partition of `batch` into 1..5 contiguous shards.
    shard_count = data.draw(st.integers(min_value=1, max_value=5))
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(batch)),
                min_size=shard_count - 1,
                max_size=shard_count - 1,
            )
        )
    )
    bounds = [0, *cuts, len(batch)]
    shard_paths = []
    json_merge = []
    for index in range(shard_count):
        chunk = batch[bounds[index] : bounds[index + 1]]
        shard_paths.append(
            write_records(tmp_path / f"shard-{index}.rrec", chunk)
        )
        json_merge.extend(
            json.loads(record.to_json()) for record in chunk
        )
    merged = merge_record_files(shard_paths, tmp_path / "merged.rrec", tag="t")
    serial = write_records(tmp_path / "serial.rrec", batch, tag="t")
    assert merged.read_bytes() == serial.read_bytes()
    assert [
        record.json_dict() for record in read_records(merged)
    ] == [ScenarioRecord.from_dict(row).json_dict() for row in json_merge]


class TestSweepEquivalence:
    SCENARIO = "bare-bb-m2"
    SHOTS = 8

    def _run(self, workers, **kwargs):
        return run_scenario(
            self.SCENARIO, shots=self.SHOTS, workers=workers, **kwargs
        )

    def test_artefact_is_bit_identical_for_workers_1_and_4(self, tmp_path):
        serial = self._run(1)
        pooled = self._run(4, shard_size=2)
        assert serial == pooled
        first = write_records(tmp_path / "w1.rrec", serial)
        second = write_records(tmp_path / "w4.rrec", pooled)
        assert first.read_bytes() == second.read_bytes()

    def test_warm_binary_cache_hit_byte_matches_the_producing_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = self._run(1, cache=cache)
        fingerprint = cache.fingerprints()[0]
        committed = cache.binary_path_for(fingerprint).read_bytes()
        warm = self._run(4, shard_size=2, cache=cache)
        assert warm == cold
        assert cache.binary_path_for(fingerprint).read_bytes() == committed
        # Re-encoding the warm records reproduces the committed bytes.
        re_encoded = write_records(
            tmp_path / "warm.rrec", warm, tag=fingerprint
        )
        assert re_encoded.read_bytes() == committed

    def test_cache_and_server_serve_the_same_bytes(self, tmp_path):
        from repro.server.app import ScenarioService
        from repro.server.responses import RawResponse

        cache = ResultCache(tmp_path)
        self._run(1, cache=cache)
        fingerprint = cache.fingerprints()[0]
        service = ScenarioService(cache=cache)
        status, raw = service.handle_get(f"/api/v1/results/{fingerprint}.rrec")
        assert status == 200
        assert isinstance(raw, RawResponse)
        assert raw.body == cache.binary_path_for(fingerprint).read_bytes()
        with RecordFile(cache.binary_path_for(fingerprint)) as record_file:
            assert record_file.tobytes() == raw.body


def test_nan_records_agree_across_both_serializations(tmp_path):
    """A postselected all-rejected point (fidelity NaN) survives binary
    bit-exactly and JSON as null, and the two decodes agree."""
    base = read_records(
        write_records(
            tmp_path / "n.rrec",
            [
                ScenarioRecord(
                    scenario="s",
                    architecture="virtual",
                    m=2,
                    k=0,
                    mapping="none",
                    routing="-",
                    router="greedy-swap",
                    device="reference",
                    num_qubits=5,
                    logical_gates=10,
                    executed_gates=10,
                    extra_swaps=0,
                    link_operations=0,
                    measurements=0,
                    logical_depth=4,
                    executed_depth=4,
                    idle_error=0.0,
                    readout_error=0.0,
                    error_reduction_factor=1.0,
                    shots=16,
                    engine="feynman-tape",
                    fidelity=math.nan,
                    std_error=math.nan,
                    kept_fraction=0.0,
                )
            ],
        )
    )[0]
    assert math.isnan(base.fidelity)
    via_json = ScenarioRecord.from_json(base.to_json())
    assert via_json == base
    assert json.loads(base.to_json())["fidelity"] is None
