"""Corruption fuzzing: every malformed ``.rrec`` input is a typed error.

The reader's contract is absolute -- truncation, bit flips anywhere (magic,
versions, field table, rows, string table, CRC), foreign files, zero-length
files and trailing garbage all raise
:class:`~repro.records.format.RecordFormatError` during construction, and
the result cache maps that to a clean miss.  No code path ever yields a
garbage record.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ResultCache
from repro.records import RecordFile, RecordFormatError, read_records, write_records
from repro.records.format import HEADER_STRUCT, MAGIC
from tests.records.test_format import _record

FP = "ab" + "0" * 62


@pytest.fixture()
def sample(tmp_path):
    """A small valid file plus its bytes."""
    path = write_records(
        tmp_path / "sample.rrec",
        [_record(), _record(fidelity=0.75, scenario="other")],
        tag=FP,
    )
    return path, path.read_bytes()


def _expect_reject(tmp_path, blob: bytes):
    path = tmp_path / "mutant.rrec"
    path.write_bytes(blob)
    with pytest.raises(RecordFormatError):
        RecordFile(path)


class TestCorruptionMatrix:
    def test_zero_length_file(self, tmp_path):
        _expect_reject(tmp_path, b"")

    def test_foreign_file(self, tmp_path):
        _expect_reject(tmp_path, b'{"records": []}\n' * 8)

    def test_bad_magic(self, tmp_path, sample):
        _, blob = sample
        _expect_reject(tmp_path, b"XREC" + blob[4:])

    def test_unknown_format_version(self, tmp_path, sample):
        _, blob = sample
        mutated = blob[:4] + struct.pack("<H", 999) + blob[6:]
        _expect_reject(tmp_path, mutated)

    def test_unknown_schema_version(self, tmp_path, sample):
        _, blob = sample
        mutated = blob[:6] + struct.pack("<H", 999) + blob[8:]
        _expect_reject(tmp_path, mutated)

    def test_bit_flipped_field_table(self, tmp_path, sample):
        _, blob = sample
        offset = HEADER_STRUCT.size + 2 + len(FP) + 1  # first field name byte
        mutated = bytearray(blob)
        mutated[offset] ^= 0x01
        _expect_reject(tmp_path, bytes(mutated))

    def test_bit_flipped_crc_footer(self, tmp_path, sample):
        _, blob = sample
        mutated = bytearray(blob)
        mutated[-1] ^= 0xFF
        _expect_reject(tmp_path, bytes(mutated))

    def test_truncated_tail(self, tmp_path, sample):
        _, blob = sample
        _expect_reject(tmp_path, blob[:-5])

    def test_trailing_garbage(self, tmp_path, sample):
        _, blob = sample
        _expect_reject(tmp_path, blob + b"\x00")

    def test_inflated_row_count(self, tmp_path, sample):
        _, blob = sample
        mutated = blob[:12] + struct.pack("<Q", 10**6) + blob[20:]
        _expect_reject(tmp_path, mutated)

    def test_every_single_byte_flip_is_rejected(self, tmp_path, sample):
        """Exhaustive: CRC-32 catches any single-byte error by design."""
        _, blob = sample
        path = tmp_path / "flip.rrec"
        for index in range(len(blob)):
            mutated = bytearray(blob)
            mutated[index] ^= 0xFF
            path.write_bytes(bytes(mutated))
            with pytest.raises(RecordFormatError):
                RecordFile(path)


class TestCorruptionProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_mutation_never_yields_garbage(self, tmp_path_factory, data):
        """Any random in-place mutation either still decodes to the original
        records (impossible here -- CRC -- but the property allows it) or
        raises the typed error.  It never returns different records."""
        tmp_path = tmp_path_factory.mktemp("mutate")
        records = [_record(), _record(m=3)]
        path = write_records(tmp_path / "p.rrec", records)
        blob = bytearray(path.read_bytes())
        index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        blob[index] ^= flip
        path.write_bytes(bytes(blob))
        try:
            decoded = read_records(path)
        except RecordFormatError:
            return
        assert decoded == records  # pragma: no cover - CRC makes this unreachable

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_truncation_is_rejected(self, tmp_path_factory, data):
        tmp_path = tmp_path_factory.mktemp("truncate")
        path = write_records(tmp_path / "p.rrec", [_record()])
        blob = path.read_bytes()
        keep = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        path.write_bytes(blob[:keep])
        with pytest.raises(RecordFormatError):
            RecordFile(path)


class TestCacheIntegration:
    def test_corrupt_binary_is_a_clean_miss(self, tmp_path):
        """Every corruption class surfaces as a miss once JSON is gone too."""
        cache = ResultCache(tmp_path)
        cache.put(FP, [_record()])
        cache.path_for(FP).unlink()
        path = cache.binary_path_for(FP)
        blob = path.read_bytes()
        for mutant in (b"", blob[: len(blob) // 2], b"XREC" + blob[4:], blob + b"!"):
            path.write_bytes(mutant)
            assert cache.get(FP) is None
            assert cache.get_binary(FP) is None
            assert FP not in cache
