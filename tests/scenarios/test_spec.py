"""Scenario specs and the registry: validation, lookup, variants."""

import pytest

from repro.scenarios import (
    BUILTIN_SCENARIOS,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    iter_scenarios,
    register_scenario,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec(name="x", description="d")
        assert spec.mapping == "none"
        assert spec.memory_width == spec.qram_width

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="architecture"):
            ScenarioSpec(name="x", description="d", architecture="telepathic")

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            ScenarioSpec(name="x", description="d", mapping="warp")

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            ScenarioSpec(name="x", description="d", routing="tunnel")

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="router"):
            ScenarioSpec(name="x", description="d", router="oracle")

    def test_registered_routers_accepted(self):
        for router in ("greedy-swap", "lookahead"):
            spec = ScenarioSpec(name="x", description="d", router=router)
            assert spec.router == router
        assert ScenarioSpec(name="x", description="d").router is None

    def test_device_mapping_needs_device(self):
        with pytest.raises(ValueError, match="named device"):
            ScenarioSpec(name="x", description="d", mapping="device")

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            ScenarioSpec(name="x", description="d", device="ibm_atlantis")

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScenarioSpec(
                name="x", description="d", error_reduction_factors=()
            )

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ScenarioSpec(
                name="x", description="d", error_reduction_factors=(1.0, 0.0)
            )

    def test_negative_idle_error_rejected(self):
        with pytest.raises(ValueError, match="idle_error"):
            ScenarioSpec(name="x", description="d", idle_error=-0.1)

    def test_memory_width_combines_m_and_k(self):
        spec = ScenarioSpec(name="x", description="d", qram_width=3, sqc_width=2)
        assert spec.memory_width == 5

    def test_variant_overrides_and_renames(self):
        base = ScenarioSpec(name="x", description="d", qram_width=2)
        variant = base.variant("y", "idle flavour", idle_error=None)
        assert variant.name == "y"
        assert variant.idle_error is None
        assert variant.qram_width == 2
        assert base.idle_error == 0.0


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_scenarios()
        assert len(names) >= 6
        for spec in BUILTIN_SCENARIOS:
            assert spec.name in names
            assert get_scenario(spec.name) is spec

    def test_iter_scenarios_sorted(self):
        specs = iter_scenarios()
        assert [spec.name for spec in specs] == available_scenarios()

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        spec = BUILTIN_SCENARIOS[0]
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_replace_allows_overwrite_and_restores(self):
        original = BUILTIN_SCENARIOS[0]
        override = original.variant(original.name, "temporary override")
        try:
            register_scenario(override, replace=True)
            assert get_scenario(original.name).description == "temporary override"
        finally:
            register_scenario(original, replace=True)

    def test_mapping_ablation_family_shares_noise_settings(self):
        """The ideal/swap/teleport m=3 family must differ only in mapping."""
        ideal = get_scenario("ideal-m3")
        swap = get_scenario("htree-swap-m3")
        teleport = get_scenario("htree-teleport-m3")
        for mapped in (swap, teleport):
            assert mapped.qram_width == ideal.qram_width
            assert mapped.sqc_width == ideal.sqc_width
            assert mapped.device == ideal.device
            assert mapped.idle_error == ideal.idle_error
            assert (
                mapped.error_reduction_factors == ideal.error_reduction_factors
            )
