"""Fused entanglement-swapping scenarios: the branching tentpole end-to-end.

``htree-teleport-fused`` replaces every sequential hop chain of the
executed-teleportation expansion with a constant-depth entanglement-swapping
link (Bell pairs prepared in one layer, one layer of Bell-state
measurements, Pauli-frame corrections), which exercises bounded path
branching through the whole stack.  The acceptance properties:

* the fused circuit genuinely branches (tape branch level >= 1) and stays
  within the default branch budget;
* at zero noise the fused links reproduce the analytic constant-depth model
  exactly (every shot fidelity 1.0, like ``htree-teleport-m3``);
* the constant-depth claim is structural: the fused schedule is never
  deeper than the sequential-hop schedule, and on deeper trees (longer
  arms) it is strictly shallower with strictly less gate-idle slack --
  which is what makes fused links *beat* the executed hops under idle
  dephasing (gated quantitatively in ``benchmarks/bench_fused_links.py``);
* records are bit-identical across worker counts -- branch doubling and
  static collapse must not perturb the ShotSeeds sharding contract.
"""

import numpy as np
import pytest

from repro.circuit.ir import compile_circuit, get_max_branches
from repro.circuit.scheduling import idle_slack
from repro.scenarios import available_scenarios, get_scenario, run_scenario
from repro.scenarios.compile import compile_scenario
from repro.sim.feynman import FeynmanPathSimulator
from repro.sim.noise import NoiselessModel
from repro.sim.seeding import ShotSeeds

SEED = 7


@pytest.fixture(scope="module")
def fused():
    return compile_scenario(get_scenario("htree-teleport-fused"), SEED)


@pytest.fixture(scope="module")
def executed():
    return compile_scenario(get_scenario("htree-teleport-executed"), SEED)


@pytest.fixture(scope="module")
def analytic():
    return compile_scenario(get_scenario("htree-teleport-m3"), SEED)


def _gate_idle_total(circuit) -> int:
    slack = idle_slack(circuit)
    return sum(layers for layer in slack.gate_idle for (_, layers) in layer)


class TestCompile:
    def test_builtins_registered(self):
        names = available_scenarios()
        assert "htree-teleport-fused" in names
        assert "htree-teleport-fused-idle" in names

    def test_fused_circuit_branches_within_budget(self, fused):
        tape = compile_circuit(fused.circuit)
        assert tape.max_branch_level >= 1
        assert tape.max_branch_level <= get_max_branches()

    def test_same_link_budget_as_sequential_hops(self, fused, executed):
        """Fusion rearranges the hops in time, it does not add link work."""
        assert fused.executed_link_operations == executed.executed_link_operations
        assert fused.measurements == executed.measurements
        assert fused.extra_swaps == 0

    def test_constant_depth_is_structural(self, fused, executed):
        """The fused schedule is never deeper than the sequential one."""
        assert fused.executed_depth <= executed.executed_depth

    @pytest.mark.slow
    def test_deeper_trees_fuse_strictly_shallower(self):
        """Longer arms -> longer hop chains -> strictly less depth and idle.

        At m=3 the arms are too short for fusion to pay; at m=5 the
        constant-depth links are strictly shallower *and* leave the payload
        qubits strictly less gate-idle slack -- the structural source of the
        idle-dephasing fidelity advantage the gated benchmark measures.
        """
        fused5 = compile_scenario(
            get_scenario("htree-teleport-fused").variant(
                "fused-depth-probe-m5", "depth probe", qram_width=5
            ),
            SEED,
        )
        executed5 = compile_scenario(
            get_scenario("htree-teleport-executed").variant(
                "executed-depth-probe-m5", "depth probe", qram_width=5
            ),
            SEED,
        )
        assert fused5.executed_depth < executed5.executed_depth
        assert _gate_idle_total(fused5.circuit) < _gate_idle_total(
            executed5.circuit
        )


class TestZeroNoiseExactness:
    @pytest.mark.parametrize(
        "engine", ["feynman-tape", "feynman-interp", "feynman-batch"]
    )
    def test_every_shot_fidelity_is_exactly_one(self, fused, engine):
        result = FeynmanPathSimulator(engine=engine).query_fidelities(
            fused.circuit,
            fused.input_state,
            NoiselessModel(),
            16,
            keep_qubits=list(fused.keep_qubits),
            ideal_output=fused.ideal_output,
            rng=ShotSeeds(seed=SEED),
        )
        assert result.fidelities == pytest.approx(np.ones(16))

    def test_matches_analytic_at_zero_noise(self, fused, analytic):
        for compiled in (fused, analytic):
            result = FeynmanPathSimulator().query_fidelities(
                compiled.circuit,
                compiled.input_state,
                NoiselessModel(),
                8,
                keep_qubits=list(compiled.keep_qubits),
                ideal_output=compiled.ideal_output,
                rng=ShotSeeds(seed=SEED),
            )
            assert result.mean_fidelity == pytest.approx(1.0)


class TestShardedRunner:
    def test_worker_count_invariance(self):
        """Branch doubling + static collapse keep sharded records identical."""
        serial = run_scenario("htree-teleport-fused", shots=48, seed=SEED)
        sharded = run_scenario(
            "htree-teleport-fused", shots=48, seed=SEED, workers=3, shard_size=7
        )
        assert serial == sharded

    def test_idle_variant_runs_and_reports(self):
        records = run_scenario("htree-teleport-fused-idle", shots=16, seed=SEED)
        assert records[0]["idle_error"] > 0
        assert all(0.0 <= r["fidelity"] <= 1.0 for r in records)
