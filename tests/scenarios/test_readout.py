"""Readout-error folding: closed form, opt-in gating, and record plumbing.

The closed form being pinned: reading out ``k`` kept qubits, each
misreporting with probability ``p / eps_r``, multiplies the state-overlap
fidelity by ``(1 - p / eps_r) ** k``.  Because the survival factor is
analytic (no random stream is consumed), a readout-enabled run must equal
the readout-free run scaled by exactly that factor, shot for shot -- the
same mirror-the-closed-form style as ``tests/sim/test_idle_noise.py``.
"""

import pytest

from repro.scenarios import ScenarioSpec, compile_scenario, run_scenario
from repro.scenarios.compile import REFERENCE_CALIBRATION
from repro.scenarios.spec import get_scenario

SEED = 5
SHOTS = 32


def _spec(readout: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"readout-probe-{readout}",
        description="readout folding probe",
        qram_width=1,
        mapping="none",
        readout=readout,
        error_reduction_factors=(1.0, 10.0),
    )


class TestReadoutSurvival:
    def test_survival_closed_form(self):
        compiled = compile_scenario(_spec(True), SEED)
        p = REFERENCE_CALIBRATION.readout_error
        k = len(compiled.keep_qubits)
        assert k > 0
        for factor in (1.0, 10.0, 100.0):
            assert compiled.readout_survival(factor) == pytest.approx(
                (1.0 - p / factor) ** k
            )

    def test_opt_out_is_the_default_and_survives_at_one(self):
        spec = _spec(False)
        assert ScenarioSpec(name="d", description="d").readout is False
        compiled = compile_scenario(spec, SEED)
        assert compiled.readout_error_rate == 0.0
        assert compiled.readout_survival(1.0) == 1.0

    def test_fidelity_scaled_by_exactly_the_closed_form(self):
        """Readout on == readout off x (1 - p/eps_r)^k at every sweep point."""
        plain = run_scenario(_spec(False), shots=SHOTS, seed=SEED)
        folded = run_scenario(_spec(True), shots=SHOTS, seed=SEED)
        compiled = compile_scenario(_spec(True), SEED)
        for bare, dressed in zip(plain, folded):
            factor = bare["error_reduction_factor"]
            survival = compiled.readout_survival(factor)
            assert dressed["fidelity"] == pytest.approx(
                bare["fidelity"] * survival, rel=1e-12
            )
            assert dressed["fidelity"] < bare["fidelity"]

    def test_records_expose_the_rate(self):
        records = run_scenario(_spec(True), shots=8, seed=SEED)
        assert records[0]["readout_error"] == REFERENCE_CALIBRATION.readout_error
        bare = run_scenario(_spec(False), shots=8, seed=SEED)
        assert bare[0]["readout_error"] == 0.0

    def test_builtin_readout_scenario_uses_device_calibration(self):
        spec = get_scenario("perth-m1-readout")
        assert spec.readout is True
        compiled = compile_scenario(spec, SEED)
        assert compiled.readout_error_rate == compiled.device.readout_error
        assert 0.0 < compiled.readout_survival(1.0) < 1.0

    def test_sharding_invariance_with_readout(self):
        """The analytic factor must not break bit-identical sharded sweeps."""
        serial = run_scenario(_spec(True), shots=SHOTS, seed=SEED, workers=1)
        sharded = run_scenario(
            _spec(True), shots=SHOTS, seed=SEED, workers=4, shard_size=8
        )
        assert serial == sharded
