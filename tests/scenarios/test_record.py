"""``ScenarioRecord``: schema versioning, round trips, mapping duck-typing."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import run_scenario
from repro.scenarios.record import RECORD_SCHEMA_VERSION, ScenarioRecord

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=24
)
_counts = st.integers(min_value=0, max_value=10**9)
_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

#: Generate arbitrary (not merely realistic) field values: the round trip
#: must hold for anything the dataclass can carry.
records = st.builds(
    ScenarioRecord,
    scenario=_names,
    architecture=_names,
    m=st.integers(min_value=1, max_value=12),
    k=_counts,
    mapping=_names,
    routing=_names,
    router=_names,
    device=_names,
    num_qubits=_counts,
    logical_gates=_counts,
    executed_gates=_counts,
    extra_swaps=_counts,
    link_operations=_counts,
    measurements=_counts,
    logical_depth=_counts,
    executed_depth=_counts,
    idle_error=_floats,
    readout_error=_floats,
    error_reduction_factor=_floats,
    shots=st.integers(min_value=1, max_value=10**6),
    engine=_names,
    fidelity=_floats,
    std_error=_floats,
    kept_fraction=st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    ),
)


@settings(max_examples=200, deadline=None)
@given(records)
def test_json_round_trip_is_identity(record):
    assert ScenarioRecord.from_json(record.to_json()) == record


@settings(max_examples=50, deadline=None)
@given(records)
def test_dict_round_trip_and_mapping_equivalence(record):
    assert ScenarioRecord.from_dict(record.as_dict()) == record
    assert dict(record) == record.as_dict()
    assert json.loads(record.to_json()) == record.as_dict()


class TestMappingProtocol:
    RECORD = ScenarioRecord(
        scenario="s",
        architecture="virtual",
        m=2,
        k=0,
        mapping="none",
        routing="-",
        router="greedy-swap",
        device="reference",
        num_qubits=5,
        logical_gates=10,
        executed_gates=10,
        extra_swaps=0,
        link_operations=0,
        measurements=0,
        logical_depth=4,
        executed_depth=4,
        idle_error=0.0,
        readout_error=0.0,
        error_reduction_factor=1.0,
        shots=16,
        engine="feynman-tape",
        fidelity=0.5,
        std_error=0.01,
    )

    def test_getitem_and_contains(self):
        assert self.RECORD["fidelity"] == 0.5
        assert "scenario" in self.RECORD
        assert "nope" not in self.RECORD

    def test_getitem_raises_keyerror_like_a_dict(self):
        with pytest.raises(KeyError):
            self.RECORD["nope"]
        with pytest.raises(KeyError):
            self.RECORD["__class__"]  # attribute access is not item access
        with pytest.raises(KeyError):
            self.RECORD[0]

    def test_get_with_default(self):
        assert self.RECORD.get("engine") == "feynman-tape"
        assert self.RECORD.get("nope", "fallback") == "fallback"

    def test_iteration_and_length_cover_all_fields(self):
        keys = list(self.RECORD)
        assert len(keys) == len(self.RECORD)
        assert keys == list(self.RECORD.keys())
        assert keys[-1] == "schema_version"
        assert self.RECORD.as_dict() == {k: self.RECORD[k] for k in keys}

    def test_schema_version_defaults_to_current(self):
        assert self.RECORD.schema_version == RECORD_SCHEMA_VERSION
        assert self.RECORD["schema_version"] == RECORD_SCHEMA_VERSION


class TestValidation:
    PAYLOAD = json.loads(TestMappingProtocol.RECORD.to_json())

    def _reject(self, payload, match):
        with pytest.raises(ValueError, match=match):
            ScenarioRecord.from_dict(payload)

    def test_unknown_field_rejected(self):
        self._reject({**self.PAYLOAD, "surprise": 1}, "unknown record fields")

    def test_missing_field_rejected(self):
        payload = dict(self.PAYLOAD)
        del payload["fidelity"]
        self._reject(payload, "missing record fields")

    def test_missing_schema_version_rejected(self):
        """A payload without a version stamp is unverifiable, not current.

        Regression pin: ``from_dict`` used to default a missing
        ``schema_version`` to the current one, silently blessing truncated
        or foreign payloads as schema-compatible.
        """
        payload = dict(self.PAYLOAD)
        del payload["schema_version"]
        self._reject(payload, "missing record fields.*schema_version")

    def test_missing_kept_fraction_rejected(self):
        """v1 payloads (no ``kept_fraction``) cannot masquerade as v2."""
        payload = dict(self.PAYLOAD)
        del payload["kept_fraction"]
        self._reject(payload, "missing record fields.*kept_fraction")

    def test_missing_schema_version_reads_as_cache_miss(self, tmp_path):
        """A stored document whose rows lack the stamp misses, never raises."""
        from repro.cache.store import ResultCache

        cache = ResultCache(tmp_path)
        record = TestMappingProtocol.RECORD
        path = cache.put("ab" * 32, [record])
        # Drop the binary artefact so the JSON document is the only backend.
        cache.binary_path_for("ab" * 32).unlink()
        document = json.loads(path.read_text(encoding="utf-8"))
        for row in document["records"]:
            del row["schema_version"]
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get("ab" * 32) is None

    def test_stale_schema_version_rejected(self):
        self._reject(
            {**self.PAYLOAD, "schema_version": RECORD_SCHEMA_VERSION + 1},
            "schema_version",
        )

    def test_non_dict_payload_rejected(self):
        self._reject([1, 2], "must be a dict")


def test_run_scenario_returns_typed_records():
    """The API-redesign acceptance: typed records flow out of real runs."""
    records = run_scenario("ideal-m3", shots=8, seed=3, workers=1)
    assert all(isinstance(record, ScenarioRecord) for record in records)
    assert all(record.schema_version == RECORD_SCHEMA_VERSION for record in records)
    assert all(record.router == "greedy-swap" for record in records)
    round_tripped = [ScenarioRecord.from_json(r.to_json()) for r in records]
    assert round_tripped == records


class TestNaNCanonicalJson:
    """Regression pins for the non-standard ``NaN`` literal ``to_json``
    used to emit (``json.dumps`` default): NaN is now canonically ``null``
    on the wire and NaN again after parsing, end to end."""

    def _nan_record(self):
        import math

        return ScenarioRecord(
            **{
                **TestMappingProtocol.RECORD.as_dict(),
                "fidelity": math.nan,
                "std_error": math.nan,
                "kept_fraction": 0.0,
            }
        )

    def test_to_json_emits_null_not_nan_literal(self):
        import math

        record = self._nan_record()
        text = record.to_json()
        assert "NaN" not in text
        payload = json.loads(text)  # strict parsers accept the document
        assert payload["fidelity"] is None
        back = ScenarioRecord.from_json(text)
        assert math.isnan(back.fidelity)
        assert back == record

    def test_nan_round_trips_through_the_cache_store(self, tmp_path):
        from repro.cache.store import ResultCache

        cache = ResultCache(tmp_path)
        record = self._nan_record()
        path = cache.put("ab" * 32, [record])
        assert "NaN" not in path.read_text(encoding="utf-8")
        assert cache.get("ab" * 32) == [record]
        # The JSON fallback path alone also restores NaN.
        cache.binary_path_for("ab" * 32).unlink()
        assert cache.get("ab" * 32) == [record]

    def test_nan_round_trips_through_the_server_results_route(self, tmp_path):
        from repro.server.app import ScenarioService
        from repro.server.responses import encode

        fingerprint = "ab" * 32
        service = ScenarioService(cache=str(tmp_path))
        service.cache.put(fingerprint, [self._nan_record()])
        status, envelope = service.handle_get(f"/api/v1/results/{fingerprint}")
        assert status == 200
        blob = encode(envelope)  # allow_nan=False: raises if NaN leaked
        row = json.loads(blob)["data"]["records"][0]
        assert row["fidelity"] is None

    def test_nan_aware_equality_and_hash(self):
        first = self._nan_record()
        second = self._nan_record()
        assert first == second
        assert hash(first) == hash(second)
        assert first != TestMappingProtocol.RECORD
        assert first.__eq__(object()) is NotImplemented
