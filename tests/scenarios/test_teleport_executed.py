"""Executed-teleportation scenarios: the acceptance criteria of the PR.

* ``htree-teleport-executed`` compiles through the scenario registry, runs
  through the sharded runner with worker-count-invariant records;
* at zero noise the executed links reproduce the analytic model exactly
  (every shot fidelity is exactly 1.0, like the analytic circuit's);
* at finite noise the executed sweep agrees with the analytic
  ``htree-teleport-m3`` sweep within Monte-Carlo error at every point;
* the ``-idle`` ablation exposes the executed links' real depth cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import available_scenarios, get_scenario, run_scenario
from repro.scenarios.compile import compile_scenario
from repro.scenarios.run import scenario_report
from repro.sim.feynman import FeynmanPathSimulator
from repro.sim.noise import NoiselessModel
from repro.sim.seeding import ShotSeeds

SEED = 7
SHOTS = 200


@pytest.fixture(scope="module")
def executed():
    return compile_scenario(get_scenario("htree-teleport-executed"), SEED)


@pytest.fixture(scope="module")
def analytic():
    return compile_scenario(get_scenario("htree-teleport-m3"), SEED)


class TestCompile:
    def test_builtins_registered(self):
        names = available_scenarios()
        assert "htree-teleport-executed" in names
        assert "htree-teleport-executed-idle" in names

    def test_compiled_structure(self, executed, analytic):
        assert executed.extra_swaps == 0
        assert executed.link_sites == ()
        assert executed.executed_link_operations > 0
        assert executed.measurements > 0
        assert executed.circuit.num_clbits == executed.measurements
        # Same logical workload as the analytic variant.
        assert executed.logical_gates == analytic.logical_gates
        assert executed.keep_qubits == analytic.keep_qubits
        # The expanded circuit really contains the primitives.
        gates = executed.circuit.gates
        assert any(instr.is_measurement for instr in gates)
        assert any(instr.is_frame for instr in gates)
        assert executed.executed_gates > analytic.executed_gates

    def test_link_operation_counts_match_analytic_where_exact(
        self, executed, analytic
    ):
        """Executed hop count is the analytic 2(d-1) total minus the ladder
        CXs that double as the gate, plus nothing for bounces' savings --
        i.e. strictly positive and bounded by the analytic budget."""
        assert 0 < executed.executed_link_operations <= analytic.link_operations

    def test_depth_cost_is_real(self, executed, analytic):
        """Hop chains serialise: the executed depth exceeds the analytic
        (constant-depth-modelled) circuit's depth."""
        assert executed.executed_depth > analytic.executed_depth


class TestZeroNoiseExactness:
    @pytest.mark.parametrize("engine", ["feynman-tape", "feynman-interp"])
    def test_every_shot_fidelity_is_exactly_one(self, executed, engine):
        result = FeynmanPathSimulator(engine=engine).query_fidelities(
            executed.circuit,
            executed.input_state,
            NoiselessModel(),
            16,
            keep_qubits=list(executed.keep_qubits),
            ideal_output=executed.ideal_output,
            rng=ShotSeeds(seed=SEED),
        )
        assert result.fidelities == pytest.approx(np.ones(16))

    def test_matches_analytic_at_zero_noise(self, executed, analytic):
        for compiled in (executed, analytic):
            result = FeynmanPathSimulator().query_fidelities(
                compiled.circuit,
                compiled.input_state,
                NoiselessModel(),
                8,
                keep_qubits=list(compiled.keep_qubits),
                ideal_output=compiled.ideal_output,
                rng=ShotSeeds(seed=SEED),
            )
            assert result.mean_fidelity == pytest.approx(1.0)


class TestFiniteNoiseAgreement:
    @pytest.mark.slow
    def test_executed_matches_analytic_within_std_error(self):
        """|F_executed - F_analytic| <= 3 combined std errors, every eps."""
        executed_records = run_scenario(
            "htree-teleport-executed", shots=SHOTS, seed=SEED
        )
        analytic_records = run_scenario("htree-teleport-m3", shots=SHOTS, seed=SEED)
        for executed_point, analytic_point in zip(
            executed_records, analytic_records
        ):
            assert (
                executed_point["error_reduction_factor"]
                == analytic_point["error_reduction_factor"]
            )
            combined = float(
                np.hypot(executed_point["std_error"], analytic_point["std_error"])
            )
            difference = abs(
                executed_point["fidelity"] - analytic_point["fidelity"]
            )
            assert difference <= 3.0 * combined, (
                f"eps={executed_point['error_reduction_factor']}: "
                f"executed {executed_point['fidelity']:.4f} vs analytic "
                f"{analytic_point['fidelity']:.4f} "
                f"(3 sigma = {3 * combined:.4f})"
            )

    @pytest.mark.slow
    def test_idle_ablation_sits_below_executed(self):
        """Idle dephasing over the hop chains' depth costs fidelity."""
        plain = run_scenario("htree-teleport-executed", shots=128, seed=SEED)
        idle = run_scenario("htree-teleport-executed-idle", shots=128, seed=SEED)
        assert idle[0]["fidelity"] < plain[0]["fidelity"]
        assert idle[0]["idle_error"] > 0


class TestShardedRunner:
    def test_worker_count_invariance(self):
        serial = run_scenario("htree-teleport-executed", shots=48, seed=SEED)
        sharded = run_scenario(
            "htree-teleport-executed", shots=48, seed=SEED, workers=3, shard_size=7
        )
        assert serial == sharded

    @settings(max_examples=6, deadline=None)
    @given(
        workers=st.integers(2, 4),
        shard_size=st.integers(3, 17),
        seed=st.integers(0, 2**16),
    )
    def test_trajectories_bit_identical_across_worker_counts(
        self, workers, shard_size, seed
    ):
        """Hypothesis: merged records never depend on the sweep split."""
        serial = run_scenario("htree-teleport-executed", shots=24, seed=seed)
        split = run_scenario(
            "htree-teleport-executed",
            shots=24,
            seed=seed,
            workers=workers,
            shard_size=shard_size,
        )
        assert serial == split

    def test_report_shows_measurements(self):
        records = run_scenario("htree-teleport-executed", shots=16, seed=SEED)
        report = scenario_report("htree-teleport-executed", records)
        assert "measurements=" in report
        assert "routing=teleport-executed" in report
