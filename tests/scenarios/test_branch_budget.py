"""Typed branch-budget failures on every surface that can hit them.

A circuit whose live path branching exceeds the configurable budget
(:func:`repro.circuit.ir.get_max_branches`) must fail the same way
everywhere: the typed :class:`~repro.circuit.ir.BranchBudgetError` at
compile time, the same error re-raised by the engines at run time (the
memoised compile cache must never smuggle an over-budget tape past a
budget that was tightened later), exit code 2 with a readable message from
the CLI, the ``branch_budget_exceeded`` slug from both server paths
(submit-time 400 and the async job worker), and -- crucially -- a result
cache that never stores anything for a failed run.

``htree-teleport-fused`` is the probe: entanglement-swapping links give its
compiled circuit branch level 1, so a budget of 0 trips every check while
the default budget passes.  Each test compiles a uniquely named variant --
``compile_scenario`` is memoised on the spec, so reusing a name would let
one test's cached tape change what the next test exercises.
"""

import itertools
import json

import pytest

from repro.cache.store import ResultCache
from repro.circuit import ir
from repro.circuit.ir import BranchBudgetError
from repro.experiments.__main__ import main
from repro.scenarios import compile_scenario, get_scenario, run_scenario
from repro.scenarios.run import resolve_run
from repro.scenarios.spec import _REGISTRY, register_scenario
from repro.server import API_PREFIX, ScenarioService
from repro.server.jobs import JobTable, JobWorker

SEED = 7
_PROBE_IDS = itertools.count()


def fused_probe(tag: str):
    """A uniquely named ``htree-teleport-fused`` variant (forces cache misses)."""
    return get_scenario("htree-teleport-fused").variant(
        f"budget-probe-{tag}-{next(_PROBE_IDS)}", "branch budget probe"
    )


@pytest.fixture
def zero_budget():
    """Clamp the global branch budget to 0 for one test, then restore it."""
    previous = ir.get_max_branches()
    ir.set_max_branches(0)
    try:
        yield
    finally:
        ir.set_max_branches(previous)


@pytest.fixture
def registered_probe():
    """A budget probe registered under its name (CLI/server lookup paths)."""
    spec = register_scenario(fused_probe("registered"))
    try:
        yield spec
    finally:
        _REGISTRY.pop(spec.name, None)


class TestBudgetApi:
    def test_error_is_a_typed_value_error(self):
        assert issubclass(BranchBudgetError, ValueError)

    def test_negative_budget_rejected_zero_allowed(self):
        previous = ir.get_max_branches()
        try:
            with pytest.raises(ValueError, match="cannot be negative"):
                ir.set_max_branches(-1)
            ir.set_max_branches(0)
            assert ir.get_max_branches() == 0
        finally:
            ir.set_max_branches(previous)


class TestCompileAndRunTime:
    def test_compile_time_error(self, zero_budget):
        """A fresh compile of a branching scenario trips the budget."""
        with pytest.raises(BranchBudgetError, match="branch budget"):
            compile_scenario(fused_probe("compile"), SEED)

    def test_cached_compile_still_fails_at_run_time(self):
        """Engines re-check the budget: the memoised compile is no bypass.

        The compile cache is keyed on the spec, not the budget, so a tape
        compiled under the default budget survives a later tightening.  The
        engines' own ``require_branch_budget`` call must catch it at run
        time -- otherwise a long-lived process could keep executing circuits
        the operator just outlawed.
        """
        spec = fused_probe("runtime")
        compile_scenario(spec, SEED)  # warm the memoised compile, default budget
        previous = ir.get_max_branches()
        ir.set_max_branches(0)
        try:
            with pytest.raises(BranchBudgetError, match="branch budget"):
                run_scenario(spec, shots=2, seed=SEED, workers=1)
        finally:
            ir.set_max_branches(previous)

    def test_cache_never_stores_failed_runs(self, zero_budget, tmp_path):
        """A run that dies on the budget leaves the result cache empty."""
        cache = ResultCache(tmp_path)
        with pytest.raises(BranchBudgetError):
            run_scenario(
                fused_probe("cache"), shots=2, seed=SEED, workers=1, cache=cache
            )
        assert cache.fingerprints() == []


class TestCliSurface:
    def test_exit_code_2_and_readable_message(
        self, zero_budget, registered_probe, capsys
    ):
        rc = main(
            ["scenario", registered_probe.name, "--shots", "2", "--workers", "1"]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "branch budget exceeded" in captured.err


class TestServerSurface:
    def test_submit_rejected_with_typed_slug(
        self, zero_budget, registered_probe, tmp_path
    ):
        """The compile pre-flight 400s at submit time; nothing is queued."""
        service = ScenarioService(cache=str(tmp_path))
        status, envelope = service.handle_post(
            f"{API_PREFIX}/runs",
            json.dumps({"scenario": registered_probe.name, "shots": 2}).encode(),
        )
        assert status == 400
        assert envelope["error"]["code"] == "branch_budget_exceeded"
        assert len(service.jobs) == 0

    def test_job_worker_reports_typed_slug(self, zero_budget, tmp_path):
        """A job that dodged the pre-flight errors with the same slug."""
        spec, seed, shots, engine, fingerprint = resolve_run(
            fused_probe("worker"), shots=2, seed=SEED
        )
        table = JobTable()
        worker = JobWorker(table, ResultCache(tmp_path), workers=1)
        job = table.create(
            spec, fingerprint, shots=shots, seed=seed, engine=engine
        )
        # Drive the drain loop synchronously: one job, then the sentinel.
        worker._queue.put(job)
        worker._queue.put(None)
        worker._drain()
        finished = table.get(job.id)
        assert finished.status == "error"
        assert finished.error.startswith("branch_budget_exceeded")
