"""End-to-end scenario execution: compilation, determinism, physics, CLI.

The acceptance properties of the scenario subsystem:

* compiled mapped scenarios actually materialise communication (extra SWAPs
  or link operations, deeper schedules);
* results are bit-identical across worker counts and shard sizes;
* at equal noise, mapped scenarios lose strictly more fidelity than their
  unmapped counterpart -- routing overhead is simulated, not just counted;
* the CLI lists and runs scenarios and exports CSV/JSON/Markdown.
"""

import json

import numpy as np
import pytest

from repro.experiments.__main__ import main
from repro.mapping import HTreeEmbedding, htree_device
from repro.scenarios import (
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    run_scenario,
    scenario_report,
)

SEED = 2023
SHOTS = 64


@pytest.fixture(scope="module")
def ablation_records():
    """One quick sweep per mapping-ablation scenario (shared across tests)."""
    return {
        name: run_scenario(name, shots=SHOTS, seed=SEED, workers=1)
        for name in ("ideal-m3", "htree-swap-m3", "htree-teleport-m3")
    }


class TestCompilation:
    def test_unmapped_scenario_compiles_clean(self):
        compiled = compile_scenario(get_scenario("ideal-m3"), SEED)
        assert compiled.extra_swaps == 0
        assert compiled.link_operations == 0
        assert compiled.executed_gates == compiled.logical_gates

    def test_swap_mapping_materialises_swaps_and_depth(self):
        compiled = compile_scenario(get_scenario("htree-swap-m3"), SEED)
        assert compiled.extra_swaps > 0
        assert compiled.executed_gates > compiled.logical_gates
        assert compiled.executed_depth > compiled.logical_depth
        assert compiled.circuit.count_tagged("routing") == compiled.extra_swaps

    def test_teleport_mapping_charges_links_not_gates(self):
        compiled = compile_scenario(get_scenario("htree-teleport-m3"), SEED)
        assert compiled.link_operations > 0
        assert compiled.extra_swaps == 0
        assert compiled.executed_gates == compiled.logical_gates
        assert compiled.executed_depth == compiled.logical_depth

    def test_device_mapping_routes_onto_backend(self):
        compiled = compile_scenario(get_scenario("perth-m1"), SEED)
        assert compiled.device.name == "ibm_perth-like"
        assert compiled.circuit.num_qubits == 7
        assert compiled.extra_swaps > 0

    def test_htree_device_preserves_arm_geometry(self):
        """Cluster-to-cluster hop counts equal the embedding's arm lengths."""
        embedding = HTreeEmbedding(tree_depth=3)
        compiled = compile_scenario(get_scenario("ideal-m3"), SEED)
        layout = htree_device(embedding, compiled.circuit)
        graph = layout.device.to_networkx()
        import networkx as nx

        positions = embedding.logical_positions(compiled.circuit)
        for (parent, child), path in embedding.edge_paths.items():
            parents = [q for q, c in positions.items() if c == path[0]]
            children = [q for q, c in positions.items() if c == path[-1]]
            if not parents or not children:
                continue
            hops = nx.shortest_path_length(graph, parents[0], children[0])
            assert hops == len(path) - 1

    def test_compile_is_memoised(self):
        spec = get_scenario("ideal-m3")
        assert compile_scenario(spec, SEED) is compile_scenario(spec, SEED)


class TestDeterminism:
    def test_workers_and_shard_size_do_not_change_records(self):
        serial = run_scenario(
            "htree-teleport-m3", shots=SHOTS, seed=SEED, workers=1
        )
        sharded = run_scenario(
            "htree-teleport-m3",
            shots=SHOTS,
            seed=SEED,
            workers=4,
            shard_size=8,
        )
        assert serial == sharded

    def test_engines_agree_bit_for_bit(self):
        tape = run_scenario(
            "ideal-m3", shots=32, seed=SEED, workers=1, engine="feynman-tape"
        )
        interp = run_scenario(
            "ideal-m3", shots=32, seed=SEED, workers=1, engine="feynman-interp"
        )
        for a, b in zip(tape, interp):
            assert a["fidelity"] == b["fidelity"]


class TestPhysics:
    def test_mapped_scenarios_strictly_below_unmapped(self, ablation_records):
        """Routing overhead is simulated: mapped fidelity < ideal at eps_r=1."""
        by_factor = {
            name: {r["error_reduction_factor"]: r["fidelity"] for r in records}
            for name, records in ablation_records.items()
        }
        for factor in (1.0, 10.0):
            ideal = by_factor["ideal-m3"][factor]
            assert by_factor["htree-swap-m3"][factor] < ideal
            assert by_factor["htree-teleport-m3"][factor] < ideal

    def test_fidelity_increases_with_error_reduction(self, ablation_records):
        for records in ablation_records.values():
            fidelities = [r["fidelity"] for r in records]
            assert fidelities == sorted(fidelities)

    def test_idle_ablation_lowers_fidelity(self):
        plain = run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1)
        idle = run_scenario("ideal-m3-idle", shots=SHOTS, seed=SEED, workers=1)
        assert idle[0]["idle_error"] > 0
        assert idle[0]["fidelity"] < plain[0]["fidelity"]

    def test_records_carry_the_full_configuration(self, ablation_records):
        record = ablation_records["htree-swap-m3"][0]
        for key in (
            "scenario",
            "architecture",
            "mapping",
            "routing",
            "device",
            "num_qubits",
            "extra_swaps",
            "executed_depth",
            "error_reduction_factor",
            "fidelity",
            "std_error",
        ):
            assert key in record
        assert record["routing"] == "swap"

    def test_ad_hoc_spec_runs_without_registration(self):
        spec = ScenarioSpec(
            name="adhoc-bb",
            description="bucket-brigade sanity",
            architecture="bucket-brigade",
            qram_width=2,
            error_reduction_factors=(10.0,),
        )
        records = run_scenario(spec, shots=16, seed=SEED, workers=1)
        assert len(records) == 1
        assert 0.0 <= records[0]["fidelity"] <= 1.0


class TestReportAndCli:
    def test_report_mentions_configuration(self, ablation_records):
        report = scenario_report(
            "htree-swap-m3", ablation_records["htree-swap-m3"]
        )
        assert "htree-swap-m3" in report
        assert "extra_swaps" in report
        assert "eps_r" in report

    def test_cli_list_shows_all_scenarios(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("ideal-m3", "htree-swap-m3", "perth-m1"):
            assert name in out
        assert len([line for line in out.splitlines() if line.strip()]) >= 6

    def test_cli_requires_a_name(self, capsys):
        assert main(["scenario"]) == 2
        assert "scenario name" in capsys.readouterr().err

    def test_cli_rejects_unknown_scenario(self, capsys):
        assert main(["scenario", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_cli_rejects_names_on_other_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9", "ideal-m3"])

    def test_cli_runs_and_exports(self, tmp_path, capsys):
        assert (
            main(
                [
                    "scenario",
                    "ideal-m3",
                    "--shots",
                    "16",
                    "--workers",
                    "1",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Scenario 'ideal-m3'" in out
        for suffix in (".csv", ".json", ".md"):
            assert (tmp_path / f"scenario_ideal-m3{suffix}").exists()
        payload = json.loads(
            (tmp_path / "scenario_ideal-m3.json").read_text()
        )
        assert [record["error_reduction_factor"] for record in payload] == [
            1.0,
            10.0,
            100.0,
        ]

    def test_cli_workers_flag_reproduces_serial_artefacts(self, tmp_path):
        for workers, out in (("1", "serial"), ("4", "sharded")):
            assert (
                main(
                    [
                        "scenario",
                        "htree-swap-m3",
                        "--shots",
                        "32",
                        "--workers",
                        workers,
                        "--out",
                        str(tmp_path / out),
                    ]
                )
                == 0
            )
        serial = (tmp_path / "serial" / "scenario_htree-swap-m3.json").read_bytes()
        sharded = (tmp_path / "sharded" / "scenario_htree-swap-m3.json").read_bytes()
        assert serial == sharded


def test_seeded_runs_are_reproducible():
    first = run_scenario("perth-m1", shots=24, seed=7, workers=1)
    second = run_scenario("perth-m1", shots=24, seed=7, workers=1)
    assert first == second
    different = run_scenario("perth-m1", shots=24, seed=8, workers=1)
    assert any(
        a["fidelity"] != b["fidelity"] for a, b in zip(first, different)
    )


def test_fidelities_are_probabilities():
    records = run_scenario("guadalupe-m2", shots=16, seed=SEED, workers=1)
    for record in records:
        assert 0.0 <= record["fidelity"] <= 1.0 + 1e-9
        assert np.isfinite(record["std_error"])
