"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` works on environments whose setuptools
predates PEP 660 editable wheels (e.g. offline machines without the ``wheel``
package installed): ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
