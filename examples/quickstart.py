#!/usr/bin/env python3
"""Quickstart: build a virtual QRAM, query it, and inspect its resources.

This walks through the core workflow of the library in five steps:

1. create a classical memory;
2. build the paper's virtual QRAM over it (a physical router tree smaller
   than the memory, paged by the SQC address bits);
3. verify the query is functionally correct with the Feynman-path simulator;
4. run a noisy Monte-Carlo query and compare against the analytic bound;
5. print the resource report used by the Table 1 / Table 2 comparisons.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ClassicalMemory, VirtualQRAM
from repro.analysis import virtual_z_fidelity_bound
from repro.sim import GateNoiseModel, PauliChannel


def main() -> None:
    # 1. A 64-cell classical memory with random single-bit values.
    memory = ClassicalMemory.random(address_width=6, rng=2023)
    print(f"memory: {memory.size} cells, {memory.ones_count()} of them store 1")

    # 2. A virtual QRAM with a 16-cell physical tree (m=4) paged over k=2 bits.
    qram = VirtualQRAM(memory=memory, qram_width=4)
    circuit = qram.build_circuit()
    print(
        f"virtual QRAM: m={qram.m}, k={qram.k}, pages={qram.num_pages}, "
        f"{circuit.num_qubits} qubits, {circuit.num_gates} gates, "
        f"depth {circuit.depth()}"
    )

    # 3. Functional verification: the noiseless query must reproduce
    #    sum_i alpha_i |i>|x_i> exactly.
    assert qram.verify(), "the built circuit does not implement the query"
    print("noiseless query verified against the ideal output")

    # Query one concrete address to see the data arrive on the bus.
    address = 37
    single = qram.simulate(qram.input_state({address: 1.0}))
    bus_value = int(single.bits[0, qram.bus_qubit()])
    print(f"querying address {address}: bus reads {bus_value} "
          f"(memory stores {memory[address]})")

    # 4. A noisy query under the paper's Z-biased (phase-flip) channel.
    epsilon = 1e-3
    noise = GateNoiseModel(PauliChannel.phase_flip(epsilon))
    result = qram.run_query(noise, shots=512, rng=np.random.default_rng(7))
    bound = virtual_z_fidelity_bound(epsilon, qram.m, qram.k)
    print(
        f"noisy query fidelity (eps={epsilon}): "
        f"{result.mean_fidelity:.4f} +/- {result.std_error:.4f} "
        f"(analytic lower bound for the per-qubit model: {bound:.4f})"
    )

    # 5. The resource report that feeds the Table 1 / Table 2 reproductions.
    report = qram.resource_report()
    print("resource report:")
    for key, value in report.as_dict().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
