#!/usr/bin/env python3
"""Noise-resilience study: why the virtual QRAM tolerates Z-biased noise.

Reproduces the reasoning of Sec. 5 at three levels:

1. **structure** -- propagate single Pauli errors through the query circuit and
   show that Z errors stay local (they almost never reach the bus) while X
   errors ride the CX compression array to the root (Fig. 7);
2. **simulation** -- Monte-Carlo the query fidelity under phase-flip and
   bit-flip channels across architectures (the Figure 9 comparison);
3. **analytics** -- compare the simulated fidelity with the closed-form lower
   bounds of Eqs. 3, 5 and 6 and show what they predict for larger QRAMs than
   simulation can reach.

Run with:  python examples/noise_resilience_study.py
"""

from __future__ import annotations

import numpy as np

from repro import ClassicalMemory, VirtualQRAM
from repro.analysis import (
    qram_x_fidelity_bound,
    virtual_z_fidelity_bound,
    z_error_locality_fraction,
)
from repro.qram import BucketBrigadeQRAM, SelectSwapQRAM
from repro.sim import GateNoiseModel, PauliChannel


def structural_locality() -> None:
    print("1. structural error propagation (fraction of error locations whose")
    print("   cone never reaches the address/bus registers)")
    for m in (2, 3, 4):
        memory = ClassicalMemory.random(m, rng=m)
        qram = VirtualQRAM(memory=memory, qram_width=m)
        circuit = qram.build_circuit()
        protected = qram.kept_qubits()
        z_fraction = z_error_locality_fraction(circuit, protected, pauli="Z")
        x_fraction = z_error_locality_fraction(circuit, protected, pauli="X")
        print(f"   m={m}: Z errors avoid them {z_fraction:5.1%} of the time, "
              f"X errors only {x_fraction:5.1%}")
    print()


def simulated_comparison() -> None:
    print("2. Monte-Carlo fidelity under phase-flip vs bit-flip noise (eps = 1e-3)")
    epsilon = 1e-3
    rng_seed = 2023
    print(f"   {'m':>3} {'ours Z':>8} {'ours X':>8} {'BB Z':>8} {'BB X':>8} {'SS Z':>8}")
    for m in (2, 3, 4, 5):
        memory = ClassicalMemory.random(m, rng=m)
        row = [f"{m:>3}"]
        for cls, channel in (
            (VirtualQRAM, PauliChannel.phase_flip(epsilon)),
            (VirtualQRAM, PauliChannel.bit_flip(epsilon)),
            (BucketBrigadeQRAM, PauliChannel.phase_flip(epsilon)),
            (BucketBrigadeQRAM, PauliChannel.bit_flip(epsilon)),
            (SelectSwapQRAM, PauliChannel.phase_flip(epsilon)),
        ):
            architecture = cls(memory=memory, qram_width=m)
            result = architecture.run_query(
                GateNoiseModel(channel), shots=256, rng=np.random.default_rng(rng_seed)
            )
            row.append(f"{result.mean_fidelity:8.3f}")
        print("   " + " ".join(row))
    print()


def analytic_extrapolation() -> None:
    print("3. analytic bounds: what Eqs. 3/5/6 predict beyond simulation reach")
    epsilon = 1e-5
    print(f"   per-qubit error rate eps = {epsilon:g}")
    print(f"   {'m':>3} {'k':>3} {'memory':>10} {'Z bound':>9} {'X bound':>9}")
    for m, k in ((8, 0), (10, 2), (12, 4), (16, 8)):
        z_bound = virtual_z_fidelity_bound(epsilon, m, k)
        x_bound = qram_x_fidelity_bound(epsilon, m)
        print(f"   {m:>3} {k:>3} {1 << (m + k):>10,} {z_bound:9.4f} {x_bound:9.4f}")
    print()
    print("   the Z bound stays useful at millions of cells while the X bound")
    print("   collapses -- which is exactly why Sec. 5.2 spends code distance")
    print("   asymmetrically (larger d_x than d_z).")


def main() -> None:
    structural_locality()
    simulated_comparison()
    analytic_extrapolation()


if __name__ == "__main__":
    main()
