#!/usr/bin/env python3
"""Virtual memory: querying an address space larger than the physical QRAM.

The core systems idea of the paper (Sec. 3.1.3) mirrors classical virtual
memory: a small physical QRAM of M = 2^m cells serves queries to a memory of
N = 2^n > M cells by iterating over K = 2^k pages, with the k most-significant
address bits selecting the page.  This example explores that design space:

* how the qubit count stays flat as the memory grows (only pages increase);
* what the per-query cost of paging is (depth and classically-controlled
  gates per page, and the lazy-swapping savings on realistic data);
* how the optimizations of Sec. 3.2 interact with the page count;
* the noise price of paging, i.e. why you still want the largest physical
  QRAM your hardware can hold (Figure 11's message).

Run with:  python examples/virtual_memory_paging.py
"""

from __future__ import annotations

import numpy as np

from repro import ClassicalMemory, VirtualQRAM, VirtualQRAMOptions
from repro.sim import GateNoiseModel, PauliChannel


def paging_scaling_study() -> None:
    """Fix the physical QRAM (m=4) and grow the memory from 16 to 512 cells."""
    print("fixed 16-cell physical QRAM, growing virtual address space")
    print(f"{'memory':>8} {'pages':>6} {'qubits':>7} {'depth':>7} "
          f"{'classical gates':>16} {'T count':>8}")
    for n in range(4, 10):
        memory = ClassicalMemory.random(n, rng=n)
        qram = VirtualQRAM(memory=memory, qram_width=4)
        report = qram.resource_report()
        print(
            f"{memory.size:>8} {qram.num_pages:>6} {report.qubits:>7} "
            f"{report.circuit_depth:>7} {report.classical_controlled_gates:>16} "
            f"{report.clifford_t.t_count:>8}"
        )
    print("qubits stay flat: the address space is virtual, the tree is not.\n")


def lazy_swapping_on_structured_data() -> None:
    """Lazy data swapping shines when consecutive pages are similar.

    The paper quotes an average factor-2 saving for uniformly random data;
    structured data (e.g. a mostly-constant table) does far better because
    consecutive pages rarely differ.
    """
    print("lazy data swapping: classically-controlled gates per query")
    datasets = {
        "uniform random": ClassicalMemory.random(8, rng=1),
        "mostly zeros (sparse)": ClassicalMemory.random(8, rng=2, p_one=0.05),
        "block-constant": ClassicalMemory.from_function(
            lambda i: 1 if (i >> 6) % 2 else 0, address_width=8
        ),
    }
    for label, memory in datasets.items():
        eager = VirtualQRAM(
            memory=memory, qram_width=4,
            options=VirtualQRAMOptions(lazy_data_swapping=False),
        )
        lazy = VirtualQRAM(memory=memory, qram_width=4)
        eager_count = eager.build_circuit().count_tagged("classical")
        lazy_count = lazy.build_circuit().count_tagged("classical")
        saving = 1 - lazy_count / max(eager_count, 1)
        print(
            f"  {label:22s} eager {eager_count:5d}  lazy {lazy_count:5d} "
            f"  saving {saving:5.1%}"
        )
    print()


def paging_noise_price() -> None:
    """The noise cost of paging: same memory, different physical QRAM sizes."""
    print("noise price of paging a 64-cell memory (phase-flip, eps = 1e-3)")
    memory = ClassicalMemory.random(6, rng=11)
    noise = GateNoiseModel(PauliChannel.phase_flip(1e-3))
    for m in (1, 2, 3, 4, 5, 6):
        qram = VirtualQRAM(memory=memory, qram_width=m)
        result = qram.run_query(noise, shots=384, rng=np.random.default_rng(3))
        bar = "#" * int(round(result.mean_fidelity * 40))
        print(
            f"  m={m} (pages={qram.num_pages:2d}): fidelity {result.mean_fidelity:.3f} {bar}"
        )
    print("small trees mean many pages and many error opportunities per query;\n"
          "use the largest physical QRAM the hardware supports (Figure 11).\n")


def multi_bit_data() -> None:
    """Sec. 8 extension: memories with more than one bit per cell."""
    from repro.qram import MultiBitQuery

    memory = ClassicalMemory.random(4, rng=9, data_width=3)
    query = MultiBitQuery(memory=memory, qram_width=2)
    print("multi-bit memory (3 bits per cell) queried one bit plane at a time")
    for address in (0, 5, 11, 15):
        value = query.classical_readout(address)
        print(f"  address {address:2d}: read {value} (stored {memory[address]})")
    totals = query.total_resources()
    print(f"  total cost across planes: {totals['gate_count']} gates, "
          f"{totals['t_count']} T gates\n")


def main() -> None:
    paging_scaling_study()
    lazy_swapping_on_structured_data()
    paging_noise_price()
    multi_bit_data()


if __name__ == "__main__":
    main()
