#!/usr/bin/env python3
"""Compiling QRAM to hardware: 2D embedding, routing, devices and error correction.

This example exercises the compilation layer of the reproduction end to end:

1. embed a QRAM router tree into a 2D grid with the H-tree construction and
   verify it is a topological-minor embedding (Sec. 4.2);
2. compare swap-based and teleportation-based routing overhead (Figure 8);
3. route a small virtual QRAM onto the ibm_perth-like and
   ibmq_guadalupe-like devices and simulate it under device noise with an
   error-reduction-factor sweep (Appendix A / Figure 12);
4. compare the greedy and SABRE-style lookahead routers from the router
   registry on the same workloads (fewer SWAPs = fewer noise sites);
5. design the asymmetric rectangular surface code of Sec. 5.2 for a
   fault-tolerant deployment.

Run with:  python examples/mapping_and_hardware.py
"""

from __future__ import annotations

import numpy as np

from repro import ClassicalMemory, VirtualQRAM
from repro.analysis import design_asymmetric_code
from repro.hardware import (
    DEVICES,
    GreedySwapRouter,
    device_noise_model,
)
from repro.mapping import (
    HTreeEmbedding,
    MappedQRAM,
    SwapRouting,
    TeleportationRouting,
    verify_topological_minor,
)
from repro.sim import FeynmanPathSimulator


def embedding_picture() -> None:
    from repro.mapping import render_layout, render_overhead_summary

    print("H-tree layout of a capacity-16 QRAM (Fig. 6c analogue)")
    embedding = HTreeEmbedding(tree_depth=4)
    print(render_layout(embedding))
    print(render_overhead_summary(embedding))
    print()


def embedding_study() -> None:
    print("H-tree embedding of the router tree into a 2D grid")
    print(f"{'m':>3} {'grid':>9} {'QRAM':>6} {'data':>6} {'routing':>8} "
          f"{'unused':>7} {'minor?':>7}")
    for m in range(2, 9):
        embedding = HTreeEmbedding(tree_depth=m)
        summary = embedding.routing_resource_summary()
        report = verify_topological_minor(embedding)
        print(
            f"{m:>3} {summary['grid_rows']:>4}x{summary['grid_cols']:<4} "
            f"{summary['qram_nodes']:>6} {summary['data_nodes']:>6} "
            f"{summary['routing_qubits']:>8} {summary['unused_fraction']:>6.1%} "
            f"{str(report.is_topological_minor):>7}"
        )
    print()


def routing_comparison() -> None:
    print("routing overhead after 2D mapping (Figure 8)")
    print(f"{'m':>3} {'logical depth':>14} {'swap extra':>11} {'teleport extra':>15}")
    for m in range(3, 9):
        memory = ClassicalMemory.random(m, rng=m)
        qram = VirtualQRAM(memory=memory, qram_width=m)
        mapped = MappedQRAM(qram.build_circuit(), HTreeEmbedding(tree_depth=m))
        swap = mapped.overhead(SwapRouting())
        teleport = mapped.overhead(TeleportationRouting())
        print(
            f"{m:>3} {swap.logical_depth:>14} {swap.extra_depth:>11} "
            f"{teleport.extra_depth:>15}"
        )
    print("teleportation keeps the O(log M) query latency; swapping does not.\n")


def device_study() -> None:
    print("small virtual QRAMs on IBM-like devices (Figure 12 methodology)")
    simulator = FeynmanPathSimulator()
    configurations = [
        (1, 0, "ibm_perth"),
        (1, 1, "ibm_perth"),
        (2, 0, "ibmq_guadalupe"),
        (2, 1, "ibmq_guadalupe"),
    ]
    factors = (1.0, 10.0, 100.0, 1000.0)
    for m, k, device_name in configurations:
        device = DEVICES[device_name]
        memory = ClassicalMemory.random(m + k, rng=m * 5 + k)
        qram = VirtualQRAM(memory=memory, qram_width=m)
        routed = GreedySwapRouter(device).route(qram.build_circuit())
        logical_input = qram.input_state()
        physical_input = routed.map_state(logical_input, final=False)
        physical_ideal = routed.map_state(qram.ideal_output(logical_input), final=True)
        keep = routed.physical_qubits(qram.kept_qubits(), final=True)
        fidelities = []
        for factor in factors:
            noise = device_noise_model(device, error_reduction_factor=factor)
            result = simulator.query_fidelities(
                routed.circuit,
                physical_input,
                noise,
                shots=200,
                keep_qubits=keep,
                ideal_output=physical_ideal,
                rng=np.random.default_rng(1),
            )
            fidelities.append(f"{result.mean_fidelity:.3f}")
        print(
            f"  m={m}, k={k} on {device.name:22s} "
            f"(+{routed.swap_count:3d} SWAPs): "
            + "  ".join(
                f"eps_r={factor:g}: {value}" for factor, value in zip(factors, fidelities)
            )
        )
    print()


def router_comparison() -> None:
    from repro.hardware import available_routers, make_router

    print(f"router registry ({', '.join(available_routers())}): SWAPs per device")
    for m, k, device_name in ((1, 1, "ibm_perth"), (2, 0, "ibmq_guadalupe")):
        device = DEVICES[device_name]
        memory = ClassicalMemory.random(m + k, rng=m * 5 + k)
        circuit = VirtualQRAM(memory=memory, qram_width=m).build_circuit()
        counts = {
            name: make_router(name, device).route(circuit).swap_count
            for name in available_routers()
        }
        summary = "  ".join(f"{name}: +{count}" for name, count in counts.items())
        print(f"  m={m}, k={k} on {device.name:22s} {summary}")
    print("the lookahead router also picks the initial layout, so remote "
          "operand pairs start out adjacent.\n")


def fault_tolerant_design() -> None:
    print("asymmetric surface-code design for a fault-tolerant virtual QRAM (Sec. 5.2)")
    for m, k in ((3, 2), (5, 3), (7, 3)):
        design = design_asymmetric_code(
            m, k, physical_error_rate=1e-3, threshold=1e-2, target_logical_rate=1e-10
        )
        logical_tree_qubits = 3 * (1 << m)
        budget = design.total_physical_qubits(logical_tree_qubits, k)
        print(
            f"  m={m}, k={k}: QRAM patches d_x={design.qram_code.d_x}, "
            f"d_z={design.qram_code.d_z}; SQC patches d={design.sqc_code.d_x}; "
            f"~{budget:,} physical qubits for the tree"
        )
    print()


def main() -> None:
    embedding_picture()
    embedding_study()
    routing_comparison()
    device_study()
    router_comparison()
    fault_tolerant_design()


if __name__ == "__main__":
    main()
