"""Scenario results as a service: cold submit, poll, warm hit, byte-diff.

Starts the versioned HTTP API (:mod:`repro.server`) on an ephemeral port
with a throwaway cache, then walks the whole serving story end to end:

1. list the scenario registry over ``GET /api/v1/scenarios``;
2. submit a *cold* run via ``POST /api/v1/runs`` (it queues onto the
   sharded sweep runner) and poll ``GET /api/v1/jobs/<id>`` to completion;
3. fetch the records by content address from ``GET /api/v1/results/<fp>``;
4. resubmit the identical run -- a *warm* cache hit, done on arrival --
   and fetch the result again;
5. assert the cold and warm payloads are byte-identical: cached serving is
   provably the same answer as fresh computation, just O(1).

CI runs this script as its server smoke test.
"""

import json
import tempfile
import time
import urllib.request

from repro.server import API_PREFIX, ScenarioServer

SCENARIO = "ideal-m3"
SHOTS = 32
SEED = 7


def fetch(url: str, payload: dict | None = None) -> tuple[int, dict, bytes]:
    """One request; returns ``(status, parsed envelope, raw bytes)``."""
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={} if payload is None else {"Content-Type": "application/json"},
        method="GET" if payload is None else "POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        blob = response.read()
        return response.status, json.loads(blob), blob


def main() -> None:
    """Run the cold-vs-warm serving walkthrough against a live server."""
    with tempfile.TemporaryDirectory() as cache_dir:
        with ScenarioServer(port=0, cache=cache_dir, workers=1) as server:
            base = server.url + API_PREFIX
            print(f"serving on {server.url} (cache: {cache_dir})")

            _, listing, _ = fetch(f"{base}/scenarios")
            names = [s["name"] for s in listing["data"]["scenarios"]]
            print(f"registry exposes {len(names)} scenarios: {', '.join(names[:4])} ...")

            submission = {"scenario": SCENARIO, "shots": SHOTS, "seed": SEED}
            status, body, _ = fetch(f"{base}/runs", submission)
            job = body["data"]["job"]
            print(
                f"cold submit -> HTTP {status}, {job['id']} {job['status']} "
                f"(fingerprint {job['fingerprint'][:12]}...)"
            )
            assert status == 202 and not body["data"]["cached"]

            while True:
                _, body, _ = fetch(f"{base}/jobs/{job['id']}")
                state = body["data"]["status"]
                if state in ("done", "error"):
                    break
                time.sleep(0.05)
            assert state == "done", body
            print(f"job finished: {state}")

            _, _, cold_payload = fetch(f"{base}/results/{job['fingerprint']}")
            print(f"cold fetch: {len(cold_payload)} bytes of records")

            status, body, _ = fetch(f"{base}/runs", submission)
            print(
                f"warm submit -> HTTP {status}, cached={body['data']['cached']}, "
                f"{body['data']['job']['status']} on arrival"
            )
            assert status == 200 and body["data"]["cached"]

            _, _, warm_payload = fetch(f"{base}/results/{job['fingerprint']}")
            assert warm_payload == cold_payload
            print(
                "warm payload is byte-identical to the cold one "
                f"({len(warm_payload)} bytes) -- cached serving == fresh run"
            )


if __name__ == "__main__":
    main()
