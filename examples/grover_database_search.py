#!/usr/bin/env python3
"""Grover-style database search using QRAM as the oracle's data loader.

The paper motivates QRAM with quantum search: Grover's algorithm needs an
oracle that flags the marked database entries, and a general-purpose QRAM
realises exactly that oracle for *any* classical database -- the bus qubit,
prepared in |->, picks up a phase on the marked addresses.

This example builds the full amplitude-level pipeline:

1. store a database of N items with a handful of marked entries in a
   :class:`~repro.qram.ClassicalMemory`;
2. use a virtual QRAM query as the phase oracle (simulated exactly at the
   amplitude level with the Feynman-path machinery);
3. run Grover iterations (oracle + diffusion on the amplitude vector) and
   watch the marked amplitudes grow;
4. compare the architectures' oracle costs (the real reason Table 2 matters:
   the oracle is called O(sqrt(N)) times, so its depth multiplies).

Run with:  python examples/grover_database_search.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import ClassicalMemory, VirtualQRAM
from repro.circuit import circuit_cost
from repro.qram import BucketBrigadeQRAM, SelectSwapQRAM, SequentialQueryCircuit


def oracle_phases(memory: ClassicalMemory) -> np.ndarray:
    """Phase picked up by each address when the bus is prepared in |->.

    A QRAM query flips the bus exactly for addresses storing 1, which on a
    |-> bus becomes a (-1) phase: the standard phase-kickback oracle.  The
    virtual QRAM's correctness (verified in the test suite and below) is what
    guarantees this classical shortcut is the true amplitude-level behaviour.
    """
    return np.array([-1.0 if memory[i] else 1.0 for i in range(memory.size)])


def grover_search(memory: ClassicalMemory, iterations: int) -> np.ndarray:
    """Amplitude evolution of Grover search driven by QRAM oracle queries."""
    size = memory.size
    amplitudes = np.full(size, 1.0 / math.sqrt(size))
    phases = oracle_phases(memory)
    for _ in range(iterations):
        amplitudes = amplitudes * phases              # QRAM phase oracle
        mean = amplitudes.mean()                      # diffusion operator
        amplitudes = 2 * mean - amplitudes
    return amplitudes


def verify_oracle_once(memory: ClassicalMemory, qram_width: int) -> None:
    """Check, via simulation, that the QRAM query marks exactly the 1-cells."""
    qram = VirtualQRAM(memory=memory, qram_width=qram_width)
    assert qram.verify()
    output = qram.simulate()
    addresses = output.register_values(qram.address_qubits())
    bus = output.bits[:, qram.bus_qubit()]
    marked = {int(a) for a, b in zip(addresses, bus) if b}
    expected = {i for i in range(memory.size) if memory[i]}
    assert marked == expected, "oracle marks the wrong addresses"


def main() -> None:
    # A 64-entry database with three marked items.
    marked = {5, 23, 42}
    memory = ClassicalMemory.from_function(
        lambda i: 1 if i in marked else 0, address_width=6
    )
    print(f"database: {memory.size} entries, marked items {sorted(marked)}")

    # The QRAM oracle is functionally correct (this runs the actual circuit).
    verify_oracle_once(memory, qram_width=4)
    print("QRAM oracle verified at the circuit level (m=4, k=2)")

    # Grover amplification with the optimal iteration count.
    optimal = math.floor(math.pi / 4 * math.sqrt(memory.size / len(marked)))
    amplitudes = grover_search(memory, optimal)
    success = float(sum(amplitudes[i] ** 2 for i in marked))
    print(
        f"after {optimal} Grover iterations the probability of measuring a "
        f"marked item is {success:.3f}"
    )

    # Oracle cost comparison: the oracle runs O(sqrt(N)) times, so Table 2's
    # depth and T-count differences multiply into the whole algorithm.
    print("\noracle cost per call (and per full search):")
    architectures = {
        "virtual QRAM (ours)": VirtualQRAM(memory=memory, qram_width=4),
        "SQC+BB baseline": BucketBrigadeQRAM(memory=memory, qram_width=4),
        "SQC+SS baseline": SelectSwapQRAM(memory=memory, qram_width=4),
        "SQC / QROM": SequentialQueryCircuit(memory=memory),
    }
    for name, architecture in architectures.items():
        circuit = architecture.build_circuit()
        cost = circuit_cost(circuit)
        print(
            f"  {name:22s} depth {circuit.depth():5d}  T-count {cost.t_count:6d}"
            f"  -> search T-count ~ {cost.t_count * optimal}"
        )


if __name__ == "__main__":
    main()
