#!/usr/bin/env python3
"""Teleportation routing: the analytic cost model vs the executed links.

The paper's Sec. 4.3 moves QRAM payloads across the H-tree with
entanglement-based teleportation.  This example compares the two ways the
reproduction realises that claim:

1. **Analytic** (``htree-teleport-m3``): remote gates execute in place and
   each is charged ``2 (d - 1)`` applications of the two-qubit error
   channel -- the link is a fidelity multiplier, not a circuit.
2. **Executed** (``htree-teleport-executed``): every remote gate is
   expanded into entanglement-link CX hops over the free routing-chain
   vertices, mid-circuit X-basis measurements and classically-controlled
   Pauli corrections (Pauli-frame feedforward).  The link is now a real
   circuit: measurement outcomes are sampled per shot, noise hits the hop
   gates themselves, and at zero noise the expansion reproduces the
   logical query exactly.

The script prints the structural difference, checks the zero-noise
exactness, sweeps both variants under identical noise, and finishes with
the teleport-aware router relocating a qubit across a line device.

Run with:  python examples/teleportation_routing.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import QuantumCircuit
from repro.hardware import make_router
from repro.hardware.devices import DeviceModel
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.compile import compile_scenario
from repro.sim import FeynmanPathSimulator
from repro.sim.noise import NoiselessModel
from repro.sim.seeding import ShotSeeds

SEED = 7
SHOTS = 96


def compare_structure() -> None:
    """What changes when the links become circuits."""
    analytic = compile_scenario(get_scenario("htree-teleport-m3"), SEED)
    executed = compile_scenario(get_scenario("htree-teleport-executed"), SEED)
    print("structure (same m=3 virtual QRAM, same H-tree embedding):")
    print(
        f"  analytic: {analytic.executed_gates} gates, "
        f"depth {analytic.executed_depth}, "
        f"{analytic.link_operations} link ops charged as noise sites"
    )
    print(
        f"  executed: {executed.executed_gates} gates "
        f"({executed.measurements} measurements, "
        f"{executed.executed_link_operations} link-hop CXs), "
        f"depth {executed.executed_depth} on "
        f"{executed.circuit.num_qubits} device vertices"
    )

    # Zero noise: the executed links must reproduce the ideal query exactly,
    # for every measurement-outcome realisation.
    result = FeynmanPathSimulator().query_fidelities(
        executed.circuit,
        executed.input_state,
        NoiselessModel(),
        8,
        keep_qubits=list(executed.keep_qubits),
        ideal_output=executed.ideal_output,
        rng=ShotSeeds(seed=SEED),
    )
    print(f"  zero-noise executed fidelity: {result.mean_fidelity:.6f} (exact)")


def compare_sweeps() -> None:
    """The executed links converge to the analytic model under noise."""
    print(f"\nsweep comparison ({SHOTS} shots, seed {SEED}):")
    analytic = run_scenario("htree-teleport-m3", shots=SHOTS, seed=SEED)
    executed = run_scenario("htree-teleport-executed", shots=SHOTS, seed=SEED)
    print("  eps_r    analytic          executed          |diff|/sigma")
    for point_a, point_e in zip(analytic, executed):
        sigma = float(np.hypot(point_a["std_error"], point_e["std_error"]))
        difference = abs(point_a["fidelity"] - point_e["fidelity"])
        print(
            f"  {point_a['error_reduction_factor']:<8}"
            f" {point_a['fidelity']:.4f} ± {point_a['std_error']:.4f}"
            f"   {point_e['fidelity']:.4f} ± {point_e['std_error']:.4f}"
            f"   {difference / sigma if sigma else 0.0:.2f}"
        )
    print("  (agreement within a few combined std errors at every point)")


def teleport_aware_routing() -> None:
    """The lookahead-teleport router hops across free vertices."""
    print("\nteleport-aware routing (2 logical qubits on a 10-vertex line):")
    device = DeviceModel(
        name="line10",
        num_qubits=10,
        coupling_map=tuple((i, i + 1) for i in range(9)),
    )
    circuit = QuantumCircuit(num_qubits=2)
    circuit.cx(0, 1)
    circuit.cx(1, 0)
    layout = {0: 0, 1: 9}
    for router_name in ("lookahead", "lookahead-teleport"):
        routed = make_router(router_name, device).route(circuit, layout)
        print(
            f"  {router_name:20} swaps={routed.swap_count:2}  "
            f"link_hops={routed.link_operations:2}  "
            f"final layout={routed.physical_qubits([0, 1])}"
        )
    print("  (the relocation consumes only free vertices and resets them)")


def main() -> None:
    compare_structure()
    compare_sweeps()
    teleport_aware_routing()


if __name__ == "__main__":
    main()
