"""Figure 10: virtual QRAM fidelity vs error-reduction factor.

Regenerates the two panels (phase-flip and bit-flip channels) over
eps_r in {0.1, 1, 10, 100, 1000} for m = 1..5 at k = 0, and checks that the
fidelity is monotone in eps_r, that larger trees need better hardware, and
that the Z panel dominates the X panel (the paper's bias-resilience gap).
"""

from conftest import emit

from repro.experiments import fig10_report, run_fig10

WIDTHS = (1, 2, 3, 4, 5)
FACTORS = (0.1, 1.0, 10.0, 100.0, 1000.0)
SHOTS = 192


def bench_fig10_both_panels(run_once):
    records = run_once(run_fig10, WIDTHS, FACTORS, shots=SHOTS)
    emit(
        "Figure 10 (fidelity vs error reduction factor)",
        fig10_report(WIDTHS, FACTORS, shots=SHOTS),
    )

    def fidelity(error: str, m: int, factor: float) -> float:
        return next(
            r["fidelity"]
            for r in records
            if r["error"] == error
            and r["m"] == m
            and r["error_reduction_factor"] == factor
        )

    # Monotone in the error-reduction factor for every series.
    for error in ("Z", "X"):
        for m in WIDTHS:
            assert fidelity(error, m, 1000.0) >= fidelity(error, m, 0.1) - 0.02
    # At fixed noise, the Z panel dominates the X panel for the larger trees.
    assert fidelity("Z", 5, 1.0) >= fidelity("X", 5, 1.0)
    # At eps_r = 1000 even the largest tree is close to ideal.
    assert fidelity("Z", 5, 1000.0) > 0.98


def bench_fig10_saturation_threshold(run_once):
    """How much error reduction each QRAM width needs to reach F > 0.9 (Z panel)."""
    records = run_once(run_fig10, WIDTHS, FACTORS, shots=SHOTS, errors=("Z",))
    thresholds = {}
    for m in WIDTHS:
        series = sorted(
            (r for r in records if r["m"] == m),
            key=lambda r: r["error_reduction_factor"],
        )
        thresholds[m] = next(
            (r["error_reduction_factor"] for r in series if r["fidelity"] > 0.9),
            float("inf"),
        )
    emit(
        "Figure 10 saturation (smallest eps_r with F > 0.9, Z errors)",
        "\n".join(f"m={m}: eps_r >= {thresholds[m]:g}" for m in WIDTHS),
    )
    # Larger QRAMs need at least as much error reduction as smaller ones.
    assert thresholds[5] >= thresholds[1]
