"""Figure 8: extra operation depth after mapping onto a 2D grid.

Regenerates the swap-based vs teleportation-based routing overhead series for
QRAM widths 1..9 and checks the paper's qualitative claims (exponential vs
flat growth, ~25% unused grid qubits, topological-minor embedding).
"""

from conftest import emit

from repro.experiments import fig8_report, run_fig8


def bench_fig8_full_sweep(run_once):
    """The full m = 1..9 sweep of the paper's figure."""
    records = run_once(run_fig8, tuple(range(1, 10)))
    assert all(record["topological_minor"] for record in records)
    emit("Figure 8 (m = 1..9)", fig8_report(tuple(range(1, 10))))

    by_m = {record["m"]: record for record in records}
    # Teleportation wins for every width where routing is needed at all.
    for m in range(5, 10):
        assert by_m[m]["teleport_extra_depth"] < by_m[m]["swap_extra_depth"]
    # Swap overhead grows super-linearly; teleportation stays near-linear.
    assert by_m[9]["swap_extra_depth"] > 3 * by_m[6]["swap_extra_depth"]
    assert by_m[9]["teleport_extra_depth"] < 3 * by_m[6]["teleport_extra_depth"]


def bench_fig8_unused_qubit_fraction(run_once):
    """Sec. 7.2's layout claim: about 25% of grid qubits stay unused."""
    records = run_once(run_fig8, (4, 6, 8))
    for record in records:
        assert 0.15 <= record["unused_fraction"] <= 0.30
    emit("Figure 8 layout statistics", fig8_report((4, 6, 8)))
