"""Gate benchmark JSON output against a committed baseline.

Every benchmark that supports ``--json`` emits a ``"gates"`` object of
higher-is-better metrics (speedups).  This checker compares a fresh run
against the baseline committed under ``benchmarks/baselines/`` and fails when
any gated metric regressed by more than the tolerance (default 20%).

Only *relative* metrics are gated: absolute wall-clock depends on the runner
hardware, but a speedup ratio measures both sides on the same machine, which
is what makes the comparison meaningful across dev boxes and CI runners.

Usage::

    python benchmarks/check_regression.py CURRENT.json BASELINE.json [--tolerance 0.2]
"""

import argparse
import json
import sys


def check(
    current: dict, baseline: dict, tolerance: float
) -> list[tuple[str, float, float]]:
    """Return ``(metric, current, floor)`` for every gated metric that regressed."""
    regressions = []
    for metric, reference in baseline.get("gates", {}).items():
        measured = current.get("gates", {}).get(metric)
        if measured is None:
            regressions.append((metric, float("nan"), reference * (1.0 - tolerance)))
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            regressions.append((metric, measured, floor))
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="JSON written by a fresh benchmark run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression before failing (default 0.2)",
    )
    args = parser.parse_args(argv)

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    name = baseline.get("benchmark", args.baseline)
    regressions = check(current, baseline, args.tolerance)
    for metric, reference in baseline.get("gates", {}).items():
        measured = current.get("gates", {}).get(metric, float("nan"))
        print(
            f"[{name}] {metric}: current={measured:.3f} baseline={reference:.3f} "
            f"floor={reference * (1.0 - args.tolerance):.3f}"
        )
    if regressions:
        for metric, measured, floor in regressions:
            print(
                f"FAIL: [{name}] {metric} regressed more than "
                f"{args.tolerance:.0%}: {measured:.3f} < {floor:.3f}",
                file=sys.stderr,
            )
        return 1
    print(f"OK: [{name}] no gated metric regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
