"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's own tables: each benchmark switches off one design
ingredient of the virtual QRAM (or of the compilation layer) and measures what
it costs, quantifying why the ingredient is part of the design.
"""

from conftest import emit

from repro.experiments.common import format_table, random_memory
from repro.mapping import HTreeEmbedding, MappedQRAM, SwapRouting, TeleportationRouting
from repro.qram import BucketBrigadeQRAM, VirtualQRAM, VirtualQRAMOptions
from repro.sim import GateNoiseModel, PauliChannel


def bench_ablation_lazy_swapping_under_noise(run_once):
    """Lazy data swapping saves classically-controlled gates *and* fidelity.

    Fewer physical operations means fewer error opportunities, so the lazy
    variant should be at least as good under gate noise.
    """

    def run():
        memory = random_memory(6)
        noise = GateNoiseModel(PauliChannel.depolarizing(1e-3))
        rows = []
        for lazy in (False, True):
            options = VirtualQRAMOptions(lazy_data_swapping=lazy)
            architecture = VirtualQRAM(memory=memory, qram_width=3, options=options)
            classical = architecture.build_circuit().count_tagged("classical")
            fidelity = architecture.run_query(noise, shots=256, rng=7).mean_fidelity
            rows.append(["lazy" if lazy else "eager", classical, fidelity])
        return rows

    rows = run_once(run)
    emit(
        "Ablation: lazy data swapping (m=3, k=3, depolarizing 1e-3)",
        format_table(["variant", "classical gates", "fidelity"], rows),
    )
    eager, lazy = rows
    assert lazy[1] < eager[1]
    assert lazy[2] >= eager[2] - 0.03


def bench_ablation_pipelining_depth_scaling(run_once):
    """Pipelined vs sequential address loading depth as the tree grows."""

    def sweep():
        rows = []
        for m in (2, 4, 6, 8):
            memory = random_memory(m)
            sequential = VirtualQRAM(
                memory=memory, qram_width=m,
                options=VirtualQRAMOptions(pipelined_addressing=False),
            )
            pipelined = VirtualQRAM(memory=memory, qram_width=m)
            rows.append(
                [
                    m,
                    sequential.build_circuit().depth(),
                    pipelined.build_circuit().depth(),
                ]
            )
        return rows

    rows = run_once(sweep)
    emit(
        "Ablation: address pipelining (circuit depth)",
        format_table(["m", "sequential depth", "pipelined depth"], rows),
    )
    # The depth gap widens with m (the m^2 -> m reduction of Sec. 3.2.3).
    gaps = [sequential - pipelined for _, sequential, pipelined in rows]
    assert gaps == sorted(gaps)


def bench_ablation_recycling_qubit_footprint(run_once):
    """Address-qubit recycling vs dedicated accumulators across tree sizes."""

    def sweep():
        rows = []
        for m in (3, 5, 7):
            memory = random_memory(m)
            raw = VirtualQRAM(
                memory=memory, qram_width=m,
                options=VirtualQRAMOptions(recycle_address_qubits=False),
            )
            recycled = VirtualQRAM(memory=memory, qram_width=m)
            rows.append(
                [
                    m,
                    raw.build_circuit().num_qubits,
                    recycled.build_circuit().num_qubits,
                ]
            )
        return rows

    rows = run_once(sweep)
    emit(
        "Ablation: address-qubit recycling (qubit count)",
        format_table(["m", "dedicated accumulators", "recycled wires"], rows),
    )
    for _, raw_qubits, recycled_qubits in rows:
        assert recycled_qubits < raw_qubits


def bench_ablation_new_retrieval_vs_bucket_brigade(run_once):
    """The paper's CX-compression retrieval vs classic routed retrieval.

    The novel data-retrieval stage replaces per-page CSWAP routing (T gates)
    with a Clifford CX array, which is where the load-once T savings come from.
    """

    def run():
        from repro.circuit import circuit_cost

        memory = random_memory(6)
        rows = []
        for label, cls in (("virtual (ours)", VirtualQRAM), ("SQC+BB", BucketBrigadeQRAM)):
            architecture = cls(memory=memory, qram_width=3)
            cost = circuit_cost(architecture.build_circuit())
            rows.append([label, cost.t_count, cost.t_depth, cost.clifford_count])
        return rows

    rows = run_once(run)
    emit(
        "Ablation: data-retrieval strategy (m=3, k=3)",
        format_table(["architecture", "T count", "T depth", "Clifford count"], rows),
    )
    ours, baseline = rows
    assert ours[1] < baseline[1]
    assert ours[2] < baseline[2]


def bench_ablation_teleportation_link_depth(run_once):
    """Sensitivity of Figure 8 to the assumed per-link teleportation depth."""

    def sweep():
        memory = random_memory(7)
        architecture = VirtualQRAM(memory=memory, qram_width=7)
        mapped = MappedQRAM(architecture.build_circuit(), HTreeEmbedding(tree_depth=7))
        swap_depth = mapped.overhead(SwapRouting()).extra_depth
        rows = [["swap-based", swap_depth]]
        for link_depth in (1, 2, 4, 8):
            overhead = mapped.overhead(TeleportationRouting(link_depth=link_depth))
            rows.append([f"teleportation (link depth {link_depth})", overhead.extra_depth])
        return rows

    rows = run_once(sweep)
    emit(
        "Ablation: teleportation link depth (m=7)",
        format_table(["scheme", "extra depth"], rows),
    )
    swap_extra = rows[0][1]
    # Even a pessimistic 8-layer teleportation link still beats swap routing.
    assert all(extra < swap_extra for _, extra in rows[1:])
