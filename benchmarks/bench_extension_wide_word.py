"""Extension study: wide-word (multi-bit) virtual QRAM vs per-plane queries.

Section 8 of the paper discusses generalising the data width beyond one bit.
This benchmark quantifies the benefit of the library's wide-word extension:
the address-loading stage (the T-gate-heavy part) is shared across all bit
planes, so the wide query's cost grows far slower with the data width than
repeating a full single-bit query per plane.
"""

from conftest import emit

from repro.circuit import circuit_cost
from repro.experiments.common import format_table
from repro.qram import ClassicalMemory, MultiBitQuery, WideWordVirtualQRAM


def bench_wide_word_vs_per_plane(run_once):
    """T-count and depth of one wide query vs data_width single-bit queries."""

    def sweep():
        rows = []
        for data_width in (1, 2, 4, 8):
            memory = ClassicalMemory.random(5, rng=data_width, data_width=data_width)
            wide = WideWordVirtualQRAM(memory=memory, qram_width=3)
            wide_cost = circuit_cost(wide.build_circuit())
            per_plane = MultiBitQuery(memory=memory, qram_width=3).total_resources()
            rows.append(
                [
                    data_width,
                    wide_cost.t_count,
                    per_plane["t_count"],
                    per_plane["t_count"] / max(wide_cost.t_count, 1),
                    wide.build_circuit().depth(),
                    per_plane["circuit_depth"],
                ]
            )
        return rows

    rows = run_once(sweep)
    emit(
        "Extension: wide-word query vs per-plane queries (m=3, k=2)",
        format_table(
            [
                "data width",
                "wide T count",
                "per-plane T count",
                "T saving",
                "wide depth",
                "per-plane depth",
            ],
            rows,
        ),
    )
    # The advantage grows with the data width (address loading amortised).
    savings = [row[3] for row in rows]
    assert savings == sorted(savings)
    assert savings[-1] > 2.0


def bench_wide_word_correctness_at_scale(run_once):
    """Functional verification of a 4-bit-word, 64-cell wide query."""

    def verify():
        memory = ClassicalMemory.random(6, rng=1, data_width=4)
        qram = WideWordVirtualQRAM(memory=memory, qram_width=4)
        return qram.verify(), qram.build_circuit().num_qubits

    ok, qubits = run_once(verify)
    emit(
        "Extension: wide-word correctness at scale",
        f"64 cells x 4-bit words on a 16-cell tree: verified={ok}, {qubits} qubits",
    )
    assert ok
