"""Figure 11: fidelity trade-off between QRAM width m and SQC width k.

Regenerates the (m, k) fidelity grids under Z and X noise for error-reduction
factors 1, 10 and 100, and checks the paper's conclusion that fidelity decays
faster along the k axis than along the m axis.
"""

from conftest import emit

from repro.experiments import fig11_report, k_versus_m_decay, run_fig11

QRAM_WIDTHS = (1, 2, 3)
SQC_WIDTHS = (0, 1, 2, 3)
FACTORS = (1.0, 10.0, 100.0)
SHOTS = 192


def bench_fig11_grid(run_once):
    records = run_once(
        run_fig11, QRAM_WIDTHS, SQC_WIDTHS, FACTORS, shots=SHOTS
    )
    emit(
        "Figure 11 (m/k trade-off grids)",
        fig11_report(QRAM_WIDTHS, SQC_WIDTHS, FACTORS, shots=SHOTS),
    )

    decay = k_versus_m_decay(records, error="Z", factor=1.0)
    emit(
        "Figure 11 decay rates (Z errors, eps_r = 1)",
        f"average fidelity drop per +1 in k: {decay['average_drop_per_k']:.4f}\n"
        f"average fidelity drop per +1 in m: {decay['average_drop_per_m']:.4f}",
    )


def bench_fig11_paging_heavy_versus_tree_heavy(run_once):
    """The paper's conclusion -- growing k hurts more than growing m -- compared
    at a fixed total address width of n = 6 (a 64-cell memory): the
    paging-heavy design (m=1, k=5) loses clearly to a tree-heavy design
    (m=4, k=2) under the same Z-noise budget."""
    from repro.experiments.common import experiment_rng, random_memory
    from repro.qram import VirtualQRAM
    from repro.sim import GateNoiseModel, PauliChannel

    def run():
        noise = GateNoiseModel(PauliChannel.phase_flip(1e-3))
        results = {}
        for m in (1, 4):
            memory = random_memory(6)
            architecture = VirtualQRAM(memory=memory, qram_width=m)
            results[m] = architecture.run_query(
                noise, shots=384, rng=experiment_rng()
            ).mean_fidelity
        return results

    results = run_once(run)
    emit(
        "Figure 11 paging-heavy vs tree-heavy (n = 6, Z errors, eps_r = 1)",
        f"m=1, k=5 (paging-heavy): F = {results[1]:.4f}\n"
        f"m=4, k=2 (tree-heavy):   F = {results[4]:.4f}",
    )
    assert results[4] > results[1] + 0.05


def bench_fig11_error_reduction_recovers_fidelity(run_once):
    """At eps_r = 100 every configuration in the sweep is usable again."""
    records = run_once(
        run_fig11, QRAM_WIDTHS, SQC_WIDTHS, (100.0,), shots=SHOTS, errors=("Z",)
    )
    worst = min(record["fidelity"] for record in records)
    emit(
        "Figure 11 (Z errors, eps_r = 100)",
        f"worst-case fidelity across the grid: {worst:.4f}",
    )
    assert worst > 0.9
