"""Figure 9: query fidelity of Our/BB/SS architectures under Z and X errors.

Regenerates the six fidelity-vs-QRAM-width series at eps = 1e-3 and checks the
paper's qualitative claims: polynomial decay for Z errors in the virtual and
bucket-brigade QRAMs, much faster decay for X errors in the virtual QRAM, and
no resilience at all for Select-Swap.

The Monte-Carlo shot count is reduced from the paper's 1024 to keep the
benchmark runtime reasonable; the seeded runs in EXPERIMENTS.md use the full
count.
"""

from conftest import emit

from repro.experiments import fig9_report, run_fig9

WIDTHS = (1, 2, 3, 4, 5, 6)
SHOTS = 256


def bench_fig9_full_comparison(run_once):
    """All architectures, both error channels, m = 1..6."""
    records = run_once(run_fig9, WIDTHS, shots=SHOTS)
    emit("Figure 9 (eps = 1e-3)", fig9_report(WIDTHS, shots=SHOTS))

    def fidelity(arch: str, error: str, m: int) -> float:
        return next(
            r["fidelity"]
            for r in records
            if r["architecture"] == arch and r["error"] == error and r["m"] == m
        )

    largest = WIDTHS[-1]
    # Select-Swap has no noise resilience: it is the worst architecture under
    # Z errors at the largest size.
    assert fidelity("ss", "Z", largest) < fidelity("ours", "Z", largest)
    assert fidelity("ss", "Z", largest) < fidelity("bb", "Z", largest)
    # The virtual QRAM tolerates Z errors far better than X errors.
    assert fidelity("ours", "Z", largest) > fidelity("ours", "X", largest)
    # The bucket-brigade baseline stays comparatively robust to X errors.
    assert fidelity("bb", "X", largest) > fidelity("ours", "X", largest) - 0.05


def bench_fig9_z_error_polynomial_decay(run_once):
    """The Z-error fidelity of the virtual QRAM decays slowly (polynomially)."""
    records = run_once(
        run_fig9, WIDTHS, shots=SHOTS, architectures=("ours",), errors=("Z",)
    )
    fidelities = {r["m"]: r["fidelity"] for r in records}
    # Doubling the tree size (m -> m+1) must not halve the fidelity.
    for m in WIDTHS[:-1]:
        assert fidelities[m + 1] > 0.55 * fidelities[m]
    emit(
        "Figure 9 (virtual QRAM, Z errors only)",
        "\n".join(f"m={m}: F={fidelities[m]:.4f}" for m in WIDTHS),
    )
