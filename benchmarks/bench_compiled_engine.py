"""Compiled gate-tape engine vs. the interpreted Feynman-path runner.

The per-query cost of the paper's evaluation is ``O(n_gates * n_paths)``
(Sec. 6.2); what the compiled engine removes is the constant in front of it:
per-gate string dispatch, one ``rng.choice`` per (gate, qubit) error site and
full-block masked Pauli updates.  The batched engine goes one step further:
at realistic error rates most shots share a handful of distinct error
patterns, so it samples error *events* sparsely, folds pure-Z patterns into
per-path sign masks off a single noiseless carrier run, and executes the
tape once per distinct X/Y-bearing pattern instead of once per shot.  The
workload below is the noisy Monte-Carlo setting of Figures 9-11
(capacity-32 virtual QRAM, 256 shots, phase-flip noise at ``eps = 1e-3``);
the acceptance bars are the tape engine beating the interpreted engine by at
least 2x and the batch engine beating the tape engine by at least 2x on it.

Run standalone for a quick speedup table::

    PYTHONPATH=src python benchmarks/bench_compiled_engine.py

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
``--report-only`` downgrades a missed speedup target from failure to a
warning (used in CI, where shared-runner wall-clock timing is unreliable);
the trajectory bit-identity check always gates.  ``--json PATH`` writes the
measurements (including the gated speedup) for
``benchmarks/check_regression.py`` to compare against the committed baseline.
The interpreted and tape engines consume a shared ``Generator`` stream
identically, so the standalone runner cross-checks their trajectories
bit-for-bit under it; the batch engine's bit-identity contract is the
:class:`~repro.sim.ShotSeeds` per-shot stream (its bulk-``Generator`` path
draws aggregate event counts instead), so its cross-check against the tape
engine runs under ``ShotSeeds``.
"""

import json
import time

import numpy as np

from repro.experiments.common import format_table, random_memory
from repro.qram import VirtualQRAM
from repro.sim import GateNoiseModel, PauliChannel, ShotSeeds, get_engine

M = 5
SHOTS = 256
EPSILON = 1e-3
BRANCH_SHOTS = 128
BRANCH_SEED = 7


def _workload():
    architecture = VirtualQRAM(memory=random_memory(M), qram_width=M)
    compiled = architecture.compiled_query()
    noise = GateNoiseModel(PauliChannel.phase_flip(EPSILON))
    return architecture, compiled, noise


def _branching_workload():
    """The m=3 fused-teleportation circuit: the branching micro-benchmark.

    Entanglement-swapping links branch the path set mid-circuit (Bell-pair
    ``H``) and collapse it again at the Bell measurements, so this workload
    times exactly the doubling/contraction machinery the plain QRAM query
    never touches.  Imported lazily: the scenario registry sits above the
    engines and the default workload must not pay for it.
    """
    from repro.scenarios import get_scenario
    from repro.scenarios.compile import compile_scenario

    compiled = compile_scenario(get_scenario("htree-teleport-fused"), BRANCH_SEED)
    noise = GateNoiseModel(PauliChannel.phase_flip(EPSILON))
    return compiled, noise


def _run_branching(engine_name: str, compiled, noise):
    return get_engine(engine_name).run_noisy_shots(
        compiled.circuit,
        compiled.input_state,
        noise,
        BRANCH_SHOTS,
        rng=ShotSeeds(seed=BRANCH_SEED),
    )


def _run(engine_name: str, compiled, noise, seed: int = 0):
    engine = get_engine(engine_name)
    return engine.run_noisy_shots(
        compiled.circuit,
        compiled.input_state,
        noise,
        SHOTS,
        rng=np.random.default_rng(seed),
    )


def bench_interpreted_engine_noisy_m5(benchmark):
    """Interpreted runner: 256 noisy shots of a capacity-32 QRAM query."""
    _, compiled, noise = _workload()
    bits, _ = benchmark(_run, "feynman-interp", compiled, noise)
    assert bits.shape[0] == SHOTS * compiled.input_state.num_paths


def bench_tape_engine_noisy_m5(benchmark):
    """Compiled tape engine on the identical workload."""
    _, compiled, noise = _workload()
    bits, _ = benchmark(_run, "feynman-tape", compiled, noise)
    assert bits.shape[0] == SHOTS * compiled.input_state.num_paths


def bench_batch_engine_noisy_m5(benchmark):
    """Pattern-grouped batch engine on the identical workload."""
    _, compiled, noise = _workload()
    bits, _ = benchmark(_run, "feynman-batch", compiled, noise)
    assert bits.shape[0] == SHOTS * compiled.input_state.num_paths


def bench_tape_engine_branching_m3(benchmark):
    """Tape engine on the branching fused-teleportation workload."""
    compiled, noise = _branching_workload()
    bits, _ = benchmark(_run_branching, "feynman-tape", compiled, noise)
    assert bits.shape[0] == BRANCH_SHOTS * compiled.input_state.num_paths


def bench_tape_engine_noiseless_m6(benchmark):
    """Noiseless compiled execution of a capacity-64 query (197 qubits)."""
    architecture = VirtualQRAM(memory=random_memory(6), qram_width=6)
    compiled = architecture.compiled_query()
    engine = get_engine("feynman-tape")
    output = benchmark(engine.run, compiled.circuit, compiled.input_state)
    assert output.num_paths == 64


def main(gate_speedup: bool = True, json_path: str | None = None) -> int:
    architecture, compiled, noise = _workload()
    tape = compiled.tape
    print(
        f"workload: {architecture.name} m={M}, {compiled.circuit.num_qubits} qubits, "
        f"{tape.num_gates} gates fused into {tape.num_groups} groups, "
        f"{SHOTS} shots, phase-flip eps={EPSILON}"
    )

    timings: dict[str, float] = {}
    results: dict[str, tuple] = {}
    for name in ("feynman-interp", "feynman-tape", "feynman-batch"):
        _run(name, compiled, noise)  # warm caches (tape, noise sites)
        repeats = 5
        best = min(
            _timed(name, compiled, noise) for _ in range(repeats)
        )
        timings[name] = best
        results[name] = _run(name, compiled, noise)

    same_bits = np.array_equal(results["feynman-interp"][0], results["feynman-tape"][0])
    same_amps = np.array_equal(results["feynman-interp"][1], results["feynman-tape"][1])
    batch_identical = _batch_matches_tape_under_shot_seeds(compiled, noise)
    speedup = timings["feynman-interp"] / timings["feynman-tape"]
    batch_speedup = timings["feynman-tape"] / timings["feynman-batch"]

    rows = [
        ["feynman-interp", timings["feynman-interp"] * 1e3, 1.0],
        ["feynman-tape", timings["feynman-tape"] * 1e3, speedup],
        ["feynman-batch", timings["feynman-batch"] * 1e3, speedup * batch_speedup],
    ]
    print(format_table(["engine", "best of 5 (ms)", "speedup"], rows))
    print(f"trajectories bit-identical (interp/tape): bits={same_bits} amps={same_amps}")
    print(f"batch matches tape under ShotSeeds: {batch_identical}")

    # Branching micro-benchmark: the fused-teleportation circuit doubles and
    # collapses the path set mid-shot, the code paths the QRAM query above
    # never executes.  All three engines must stay bit-identical on it under
    # ShotSeeds (hard gate), and the tape engine's lead over the interpreter
    # must not regress (speedup gate vs the committed baseline).
    branch_compiled, branch_noise = _branching_workload()
    branch_timings: dict[str, float] = {}
    branch_results: dict[str, tuple] = {}
    for name in ("feynman-interp", "feynman-tape", "feynman-batch"):
        _run_branching(name, branch_compiled, branch_noise)  # warm caches
        branch_timings[name] = min(
            _timed_branching(name, branch_compiled, branch_noise)
            for _ in range(5)
        )
        branch_results[name] = _run_branching(name, branch_compiled, branch_noise)
    branch_identical = all(
        np.array_equal(branch_results["feynman-tape"][0], branch_results[name][0])
        and np.array_equal(
            branch_results["feynman-tape"][1], branch_results[name][1]
        )
        for name in ("feynman-interp", "feynman-batch")
    )
    branching_speedup = (
        branch_timings["feynman-interp"] / branch_timings["feynman-tape"]
    )
    print(
        f"branching workload ({branch_compiled.circuit.num_qubits} qubits, "
        f"{branch_compiled.measurements} measurements, {BRANCH_SHOTS} shots): "
        f"tape {branch_timings['feynman-tape'] * 1e3:.0f} ms, "
        f"{branching_speedup:.2f}x over interp"
    )
    print(f"branching trajectories bit-identical (all engines): {branch_identical}")
    if json_path:
        payload = {
            "benchmark": "compiled_engine",
            "workload": {
                "m": M,
                "shots": SHOTS,
                "epsilon": EPSILON,
                "qubits": compiled.circuit.num_qubits,
                "gates": tape.num_gates,
                "groups": tape.num_groups,
            },
            "timings_seconds": dict(timings),
            "branching_timings_seconds": dict(branch_timings),
            "bit_identical": bool(same_bits and same_amps),
            "branching_bit_identical": bool(branch_identical),
            "gates": {
                "tape_vs_interp_speedup": speedup,
                "batch_vs_tape_speedup": batch_speedup,
                "branching_tape_vs_interp_speedup": branching_speedup,
            },
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")
    if not (same_bits and same_amps and batch_identical):
        print("FAIL: engines disagree")
        return 1
    if not branch_identical:
        print("FAIL: engines disagree on the branching workload")
        return 1
    missed = []
    if speedup < 2.0:
        missed.append(f"tape engine speedup {speedup:.2f}x is below the 2x target")
    if batch_speedup < 2.0:
        missed.append(
            f"batch engine speedup {batch_speedup:.2f}x over tape is below "
            "the 2x target"
        )
    if branching_speedup < 0.75:
        # Measurement collapse forces per-shot execution, so tape's lead
        # shrinks to parity on branching workloads -- but falling clearly
        # behind the interpreter flags a regression in the doubling path.
        missed.append(
            f"tape engine branching speedup {branching_speedup:.2f}x over "
            "interp is below the 0.75x parity floor"
        )
    if missed:
        if gate_speedup:
            for message in missed:
                print(f"FAIL: {message}")
            return 1
        # Wall-clock gating is flaky on shared CI runners; report instead.
        for message in missed:
            print(f"WARN: {message}")
        return 0
    print(
        f"OK: tape engine is {speedup:.2f}x faster than interp, "
        f"batch engine {batch_speedup:.2f}x faster than tape"
    )
    return 0


def _batch_matches_tape_under_shot_seeds(compiled, noise) -> bool:
    """Bit-identity of the batch engine on its contract stream (ShotSeeds)."""
    seeds = ShotSeeds(seed=0, point_index=0)
    reference = None
    for name in ("feynman-tape", "feynman-batch"):
        bits, amps = get_engine(name).run_noisy_shots(
            compiled.circuit, compiled.input_state, noise, SHOTS, rng=seeds
        )
        if reference is None:
            reference = (bits, amps)
    return np.array_equal(reference[0], bits) and np.array_equal(reference[1], amps)


def _timed(name, compiled, noise) -> float:
    start = time.perf_counter()
    _run(name, compiled, noise)
    return time.perf_counter() - start


def _timed_branching(name, compiled, noise) -> float:
    start = time.perf_counter()
    _run_branching(name, compiled, noise)
    return time.perf_counter() - start


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="warn instead of failing when the speedup target is missed "
        "(bit-identity always gates)",
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    cli_args = parser.parse_args()
    raise SystemExit(
        main(gate_speedup=not cli_args.report_only, json_path=cli_args.json)
    )
