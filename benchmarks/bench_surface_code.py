"""Sec. 5.2: asymmetric (rectangular) surface-code design via Eq. 7.

Regenerates the distance-gap design rule across virtual-QRAM configurations
and reports the physical-qubit budget saved by exploiting the Z bias instead
of protecting everything with the square code the SQC register needs.
"""

from conftest import emit

from repro.analysis import balanced_distance_gap, design_asymmetric_code
from repro.experiments.common import format_table

PHYSICAL_ERROR_RATE = 1e-3
THRESHOLD = 1e-2
TARGET_LOGICAL_RATE = 1e-10


def bench_eq7_distance_gap_sweep(run_once):
    """The Eq. 7 gap d_x - d_z across the (m, k) plane."""

    def sweep():
        rows = []
        for m in (1, 2, 3, 4, 5, 6):
            for k in (0, 1, 2, 3):
                gap = balanced_distance_gap(m, k, PHYSICAL_ERROR_RATE, THRESHOLD)
                rows.append([m, k, gap])
        return rows

    rows = run_once(sweep)
    emit(
        "Eq. 7 balanced distance gap (p = 1e-3, p_th = 1e-2)",
        format_table(["m", "k", "d_x - d_z"], rows),
    )
    # The gap grows with the QRAM width: larger trees are relatively more
    # X-sensitive, so they need more X distance.
    by_mk = {(int(m), int(k)): gap for m, k, gap in rows}
    assert by_mk[(6, 0)] > by_mk[(1, 0)]
    assert all(gap >= 0 for _, _, gap in rows)


def bench_asymmetric_code_budget(run_once):
    """Physical-qubit budget of the asymmetric design vs an all-square design."""

    def design_sweep():
        rows = []
        for m, k in ((2, 1), (3, 2), (4, 3), (5, 3)):
            design = design_asymmetric_code(
                m,
                k,
                physical_error_rate=PHYSICAL_ERROR_RATE,
                threshold=THRESHOLD,
                target_logical_rate=TARGET_LOGICAL_RATE,
            )
            logical_qram_qubits = 3 * (1 << m)
            asymmetric = design.total_physical_qubits(logical_qram_qubits, k)
            square_patch = design.sqc_code.physical_qubits()
            all_square = (logical_qram_qubits + k) * square_patch
            rows.append(
                [
                    m,
                    k,
                    design.qram_code.d_x,
                    design.qram_code.d_z,
                    asymmetric,
                    all_square,
                    all_square / asymmetric,
                ]
            )
        return rows

    rows = run_once(design_sweep)
    emit(
        "Asymmetric surface-code budget (target logical rate 1e-10)",
        format_table(
            ["m", "k", "d_x", "d_z", "physical qubits (asym)", "physical qubits (square)", "saving"],
            rows,
        ),
    )
    for row in rows:
        assert row[2] >= row[3]          # d_x >= d_z
        assert row[6] >= 1.0             # the asymmetric design never costs more
