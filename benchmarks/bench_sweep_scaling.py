"""Sharded sweep runner: speedup vs worker count on a fixed Monte-Carlo sweep.

The workload is the noisy-query setting of Figures 9-11 at the compiled
engine's benchmark point: a capacity-32 virtual QRAM (``m = 5``) with 256
Monte-Carlo shots per sweep point, swept over ``--points`` error-reduction
factors (a Figure-10-style series).  The sweep executes through
:class:`repro.sweep.SweepRunner`, so the shot loops split into deterministic
seed-keyed shards distributed over worker processes.

Two properties are measured:

* **Determinism** (always gates): the records produced at every worker count
  must be bit-identical to the serial run -- this is the seed-splitting
  guarantee the whole subsystem is built on.
* **Scaling** (gates unless ``--report-only``): the sweep must reach at
  least a 2x speedup at 4 workers.  Wall-clock scaling needs real cores, so
  CI gates it on the runners that have them and single-core dev boxes pass
  ``--report-only``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py
    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py \
        --report-only --json BENCH_sweep_scaling.json

``--json`` writes the measurements (including the gated speedup metrics) for
``benchmarks/check_regression.py`` to compare against the committed baseline.
"""

import argparse
import json
import os
import time

from repro.experiments.common import format_table
from repro.experiments.fig10 import run_fig10
from repro.sim.engine import get_default_engine

M = 5
SHOTS = 256
DEFAULT_POINTS = 16
DEFAULT_SHARD_SIZE = 32
DEFAULT_WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.0
SEED = 7


def _reduction_factors(points: int) -> tuple[float, ...]:
    """A geometric eps_r series of the requested length (Figure 10 style)."""
    return tuple(10.0 ** (index / 4) for index in range(points))


def _run_sweep(workers: int, points: int, shard_size: int) -> list[dict]:
    return run_fig10(
        widths=(M,),
        reduction_factors=_reduction_factors(points),
        shots=SHOTS,
        errors=("Z",),
        seed=SEED,
        workers=workers,
        shard_size=shard_size,
    )


def _timed_sweep(
    workers: int, points: int, shard_size: int, repeats: int
) -> tuple[float, list[dict]]:
    """Best-of-``repeats`` wall-clock and the (deterministic) records."""
    best = float("inf")
    records: list[dict] = []
    for _ in range(repeats):
        start = time.perf_counter()
        records = _run_sweep(workers, points, shard_size)
        best = min(best, time.perf_counter() - start)
    return best, records


def bench_sweep_serial_m5(benchmark):
    """Serial sharded sweep: 16 points x 256 shots of a capacity-32 QRAM."""
    records = benchmark(_run_sweep, 1, DEFAULT_POINTS, DEFAULT_SHARD_SIZE)
    assert len(records) == DEFAULT_POINTS


def bench_sweep_two_workers_m5(benchmark):
    """The identical sweep sharded across two worker processes."""
    records = benchmark(_run_sweep, 2, DEFAULT_POINTS, DEFAULT_SHARD_SIZE)
    assert len(records) == DEFAULT_POINTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="downgrade a missed speedup target from failure to warning "
        "(determinism always gates)",
    )
    parser.add_argument(
        "--points", type=int, default=DEFAULT_POINTS, help="sweep points"
    )
    parser.add_argument(
        "--shard-size", type=int, default=DEFAULT_SHARD_SIZE, help="shots per shard"
    )
    parser.add_argument(
        "--workers",
        type=str,
        default=",".join(str(w) for w in DEFAULT_WORKER_COUNTS),
        help="comma-separated worker counts to time (first must be 1)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="repeats per worker count (best-of)"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    worker_counts = [int(part) for part in args.workers.split(",") if part.strip()]
    if not worker_counts or worker_counts[0] != 1:
        parser.error("--workers must start with 1 (the serial reference)")

    print(
        f"workload: virtual QRAM m={M}, {args.points} sweep points x {SHOTS} "
        f"shots, shard_size={args.shard_size}, engine={get_default_engine()}, "
        f"{os.cpu_count()} cores"
    )

    timings: dict[int, float] = {}
    reference: list[dict] = []
    determinism_ok = True
    rows = []
    for workers in worker_counts:
        seconds, records = _timed_sweep(
            workers, args.points, args.shard_size, args.repeats
        )
        timings[workers] = seconds
        if workers == 1:
            reference = records
        elif records != reference:
            determinism_ok = False
        rows.append([workers, seconds * 1e3, timings[1] / seconds])
    print(format_table(["workers", "best (ms)", "speedup"], rows))
    print(f"records bit-identical across worker counts: {determinism_ok}")

    max_workers = worker_counts[-1]
    speedup = timings[1] / timings[max_workers]

    if args.json:
        payload = {
            "benchmark": "sweep_scaling",
            "workload": {
                "m": M,
                "shots": SHOTS,
                "points": args.points,
                "shard_size": args.shard_size,
                "engine": get_default_engine(),
                "cores": os.cpu_count(),
            },
            "timings_seconds": {str(w): timings[w] for w in worker_counts},
            "determinism_ok": determinism_ok,
            "gates": {f"speedup_at_{max_workers}_workers": speedup},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not determinism_ok:
        print("FAIL: sharded records differ from the serial reference")
        return 1
    if speedup < SPEEDUP_TARGET:
        message = (
            f"speedup {speedup:.2f}x at {max_workers} workers is below the "
            f"{SPEEDUP_TARGET:.0f}x target"
        )
        if args.report_only:
            # Wall-clock scaling needs real cores; report on shared/serial boxes.
            print(f"WARN: {message}")
            return 0
        print(f"FAIL: {message}")
        return 1
    print(f"OK: {speedup:.2f}x speedup at {max_workers} workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
