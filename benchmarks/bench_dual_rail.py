"""Dual-rail erasure detection vs the bare circuit under biased device noise.

The dual-rail tentpole's quantitative acceptance, as the bare-vs-dual
ablation pair ``bare-bb-m2`` / ``dual-rail-bb-m2`` on the erasure-biased
``dual-rail-cavity`` calibration (X/Y-dominant noise, the physical regime
dual-rail qubits are built for).  Three properties gate:

* **Zero-noise exactness** (always gates): the encoded bucket-brigade
  workload reproduces the logical output exactly on all three Feynman
  engines -- every shot fidelity 1.0 and ``kept_fraction == 1.0`` (every
  parity check passes).
* **Postselected advantage** (always gates): at ``eps_r = 10`` the
  dual-rail variant's postselected fidelity strictly exceeds the bare
  variant's, despite the encoding's ~3x gate overhead.
* **Magnitude + determinism** (gates vs the committed baseline): the
  infidelity-reduction ratio, the advantage with its reciprocal (the
  reciprocal turns the checker's one-sided floor into a two-sided
  bracket) and the kept fraction -- all pure functions of the seed, with
  the records bit-identical across worker counts and shard sizes (checked
  every run).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dual_rail.py
    PYTHONPATH=src python benchmarks/bench_dual_rail.py \
        --json BENCH_dual_rail.json
"""

import argparse
import json

import numpy as np

from repro.experiments.common import format_table
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.compile import compile_scenario
from repro.sim.feynman import FeynmanPathSimulator
from repro.sim.noise import NoiselessModel
from repro.sim.seeding import ShotSeeds

SEED = 7
SHOTS = 2048
FACTOR = 10.0
ENGINES = ("feynman-interp", "feynman-tape", "feynman-batch")


def _gate_variant(base: str, tag: str):
    return get_scenario(base).variant(
        f"{base}-bench-{tag}",
        "erasure-biased ablation point (dual-rail benchmark)",
        error_reduction_factors=(FACTOR,),
    )


def _zero_noise_exact() -> bool:
    """Every engine: all fidelities exactly 1.0 and every check passes."""
    compiled = compile_scenario(get_scenario("dual-rail-bb-m2"), SEED)
    for engine in ENGINES:
        result = FeynmanPathSimulator(engine=engine).query_fidelities(
            compiled.circuit,
            compiled.input_state,
            NoiselessModel(),
            16,
            keep_qubits=list(compiled.keep_qubits),
            ideal_output=compiled.ideal_output,
            rng=ShotSeeds(seed=SEED),
            postselect=compiled.postselect,
        )
        if result.kept_fraction != 1.0 or not np.all(result.fidelities == 1.0):
            return False
    return True


def _sharding_invariant(spec) -> bool:
    """Records (kept_fraction included) identical for any worker/shard split."""
    reference = run_scenario(spec, shots=256, seed=SEED, workers=1)
    sharded = run_scenario(spec, shots=256, seed=SEED, workers=4, shard_size=16)
    return reference == sharded


def bench_dual_rail_serial(benchmark):
    """Serial dual-rail bucket-brigade sweep: m=2, eps_r=10, 64 shots."""
    spec = _gate_variant("dual-rail-bb-m2", "pytest")
    records = benchmark(run_scenario, spec, shots=64, seed=SEED, workers=1)
    assert 0.0 <= records[0]["kept_fraction"] <= 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=4, help="sweep workers (records invariant)"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    bare_spec = _gate_variant("bare-bb-m2", "gate")
    dual_spec = _gate_variant("dual-rail-bb-m2", "gate")
    bare_compiled = compile_scenario(bare_spec, SEED)
    dual_compiled = compile_scenario(dual_spec, SEED)
    print(
        f"workload: bucket-brigade m=2 on {dual_compiled.device.name}, "
        f"eps_r={FACTOR}, {SHOTS} shots, seed={SEED}"
    )
    print(
        f"qubits: bare {bare_compiled.circuit.num_qubits} vs dual "
        f"{dual_compiled.circuit.num_qubits}; gates: "
        f"{bare_compiled.executed_gates} vs {dual_compiled.executed_gates} "
        f"({dual_compiled.measurements} checks)"
    )

    exact = _zero_noise_exact()
    print(f"dual-rail zero-noise exact (all engines): {exact}")
    invariant = _sharding_invariant(dual_spec)
    print(f"records sharding-invariant: {invariant}")

    results = {}
    for label, spec in (("bare", bare_spec), ("dual-rail", dual_spec)):
        [record] = run_scenario(spec, shots=SHOTS, seed=SEED, workers=args.workers)
        results[label] = record
    rows = [
        [label, record["fidelity"], record["std_error"], record["kept_fraction"]]
        for label, record in results.items()
    ]
    print(
        format_table(
            ["variant", f"fidelity@eps_r={FACTOR}", "std_error", "kept_fraction"],
            rows,
        )
    )
    advantage = results["dual-rail"]["fidelity"] - results["bare"]["fidelity"]
    reduction = (1.0 - results["bare"]["fidelity"]) / (
        1.0 - results["dual-rail"]["fidelity"]
    )
    kept_fraction = results["dual-rail"]["kept_fraction"]
    print(
        f"postselected advantage: {advantage:+.4f} "
        f"(infidelity reduced {reduction:.2f}x, kept {kept_fraction:.3f})"
    )

    if args.json:
        payload = {
            "benchmark": "dual_rail",
            "workload": {
                "architecture": "bucket-brigade",
                "qram_width": 2,
                "device": dual_compiled.device.name,
                "error_reduction_factor": FACTOR,
                "shots": SHOTS,
                "seed": SEED,
            },
            "zero_noise_exact": exact,
            "sharding_invariant": invariant,
            "fidelities": {
                label: {
                    "fidelity": record["fidelity"],
                    "std_error": record["std_error"],
                    "kept_fraction": record["kept_fraction"],
                }
                for label, record in results.items()
            },
            "gates": {
                "infidelity_reduction_ratio": reduction,
                "dual_advantage_x100": advantage * 100.0,
                "dual_advantage_reciprocal": (
                    1.0 / advantage if advantage > 0 else 0.0
                ),
                "kept_fraction_x100": kept_fraction * 100.0,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not exact:
        print("FAIL: dual-rail encoding is not exact at zero noise")
        return 1
    if not invariant:
        print("FAIL: records differ across worker counts / shard sizes")
        return 1
    if advantage <= 0:
        print(
            "FAIL: dual-rail does not beat bare under erasure-biased noise "
            f"(advantage {advantage:+.4f})"
        )
        return 1
    print(
        f"OK: dual-rail beats bare by {advantage:+.4f} "
        f"({reduction:.2f}x lower infidelity) at kept_fraction {kept_fraction:.3f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
