"""Table 2: resource comparison between SQC+BB, SQC+SS and the virtual QRAM.

Regenerates the table at several (m, k) design points and prints both the
paper's Big-O formulas (evaluated with unit constants) and the counts measured
on built circuits, plus the advantage ratios of the virtual QRAM.
"""

from conftest import emit

from repro.experiments import advantage_summary, run_table2, table2_report
from repro.experiments.common import format_table


def bench_table2_small_configurations(run_once):
    """Table 2 at (m=2, k=1) and (m=3, k=2)."""
    records = run_once(run_table2, [(2, 1), (3, 2)])
    assert {record["architecture"] for record in records} == {"SQC+BB", "SQC+SS", "Ours"}
    emit("Table 2 (small configurations)", table2_report([(2, 1), (3, 2)]))


def bench_table2_paper_scale_configuration(run_once):
    """Table 2 at (m=4, k=3): 128 cells on a 16-cell QRAM."""
    records = run_once(run_table2, [(4, 3)])
    ours_t = next(
        r["measured"]
        for r in records
        if r["architecture"] == "Ours" and r["metric"] == "t_count"
    )
    bb_t = next(
        r["measured"]
        for r in records
        if r["architecture"] == "SQC+BB" and r["metric"] == "t_count"
    )
    assert ours_t < bb_t
    emit("Table 2 (m=4, k=3)", table2_report([(4, 3)]))


def bench_table2_advantage_vs_pages(run_once):
    """How the virtual QRAM's advantage scales as the page count grows."""

    def sweep():
        return {k: advantage_summary(m=3, k=k) for k in (1, 2, 3, 4)}

    results = run_once(sweep)
    rows = [
        [k, values["t_count_vs_bb"], values["t_depth_vs_bb"], values["clifford_depth_vs_ss"]]
        for k, values in results.items()
    ]
    emit(
        "Table 2 advantage ratios vs SQC width k (m=3)",
        format_table(
            ["k", "t_count_vs_bb", "t_depth_vs_bb", "clifford_depth_vs_ss"], rows
        ),
    )
    assert results[4]["t_count_vs_bb"] > results[1]["t_count_vs_bb"]
