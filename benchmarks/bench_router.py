"""Router benchmark: lookahead vs greedy SWAP counts and depths, CI-gated.

The workload is every built-in *mapped* scenario with distinct routing work
(``htree-swap-m3`` on the executable H-tree device plus the Figure 12 sparse
backends ``perth-m1`` / ``guadalupe-m2``; the idle/readout/lookahead
variants route identically to their bases and are skipped), compiled with
both registered routers at a fixed seed.  Unlike the timing benchmarks,
routing is fully deterministic, so every gated metric is a
machine-independent pure function of the seed.

Three properties gate:

* **Dominance** (always gates): the lookahead router must not emit more
  SWAPs than greedy on *any* mapped built-in scenario, and the routed
  depth must not grow either.
* **Strict reduction** (always gates): at least one sparse-backend
  (``mapping="device"``) scenario must show strictly fewer SWAPs.
* **Ratios vs the committed baseline** (``check_regression.py``): the
  per-scenario ``greedy / lookahead`` swap and depth ratios are
  higher-is-better metrics -- a heuristic change that gives back more than
  20% of the routing win fails CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_router.py
    PYTHONPATH=src python benchmarks/bench_router.py --json BENCH_router.json
"""

import argparse
import json
import time

from repro.experiments.common import format_table
from repro.scenarios import compile_scenario, get_scenario

#: Mapped built-ins with distinct routing work (see module docstring).
SCENARIOS = ("htree-swap-m3", "perth-m1", "guadalupe-m2")
#: The sparse IBM backends on which a strict SWAP reduction is required.
SPARSE_SCENARIOS = ("perth-m1", "guadalupe-m2")
SEED = 7
ROUTERS = ("greedy-swap", "lookahead")


def _compile_with(name: str, router: str):
    spec = get_scenario(name)
    probe = spec.variant(f"{name}-bench-{router}", "router benchmark probe", router=router)
    return compile_scenario(probe, SEED)


def route_workload() -> dict[str, dict[str, dict[str, float]]]:
    """Compile every scenario with both routers; returns per-router measurements."""
    results: dict[str, dict[str, dict[str, float]]] = {}
    for name in SCENARIOS:
        results[name] = {}
        for router in ROUTERS:
            start = time.perf_counter()
            compiled = _compile_with(name, router)
            elapsed = time.perf_counter() - start
            results[name][router] = {
                "swaps": compiled.extra_swaps,
                "depth": compiled.executed_depth,
                "gates": compiled.executed_gates,
                "seconds": elapsed,
            }
    return results


def bench_router_workload(benchmark):
    """Both routers over the three mapped built-ins (compile included)."""
    results = benchmark(route_workload)
    assert set(results) == set(SCENARIOS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    results = route_workload()

    rows = []
    gates: dict[str, float] = {}
    for name in SCENARIOS:
        greedy = results[name]["greedy-swap"]
        lookahead = results[name]["lookahead"]
        rows.append(
            [
                name,
                int(greedy["swaps"]),
                int(lookahead["swaps"]),
                int(greedy["depth"]),
                int(lookahead["depth"]),
            ]
        )
        key = name.replace("-", "_")
        gates[f"swap_ratio_{key}"] = greedy["swaps"] / max(1.0, lookahead["swaps"])
        gates[f"depth_ratio_{key}"] = greedy["depth"] / lookahead["depth"]
    print(
        format_table(
            ["scenario", "greedy swaps", "lookahead swaps", "greedy depth", "lookahead depth"],
            rows,
        )
    )
    total_seconds = sum(
        results[name][router]["seconds"] for name in SCENARIOS for router in ROUTERS
    )
    print(f"total compile+route time: {total_seconds * 1e3:.0f} ms (not gated)")

    dominated = [
        name
        for name in SCENARIOS
        if results[name]["lookahead"]["swaps"] > results[name]["greedy-swap"]["swaps"]
        or results[name]["lookahead"]["depth"] > results[name]["greedy-swap"]["depth"]
    ]
    strict = [
        name
        for name in SPARSE_SCENARIOS
        if results[name]["lookahead"]["swaps"] < results[name]["greedy-swap"]["swaps"]
    ]

    if args.json:
        payload = {
            "benchmark": "router",
            "workload": {
                "scenarios": list(SCENARIOS),
                "seed": SEED,
                "routers": list(ROUTERS),
            },
            "measurements": results,
            "gates": gates,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if dominated:
        print(
            "FAIL: lookahead routed more SWAPs or deeper than greedy on: "
            + ", ".join(dominated)
        )
        return 1
    if not strict:
        print(
            "FAIL: no sparse-backend scenario shows a strict lookahead SWAP "
            f"reduction (checked {', '.join(SPARSE_SCENARIOS)})"
        )
        return 1
    print(
        "OK: lookahead <= greedy everywhere; strict reduction on "
        + ", ".join(strict)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
