"""Record-store benchmark: mmap shard merge vs JSON, packed size vs JSON.

The workload is a synthetic 120k-record sweep split into 8 worker shards,
committed once as ``.rrec`` files and once as JSON documents.  Three
properties are measured:

* **Bit-identity** (always gates): the memory-mapped k-way merge's output
  bytes must equal one serial re-encode of the concatenated records, and
  its rows must equal the JSON parse-and-concatenate merge.  The merge may
  never change an answer, only its latency.
* **Merge speedup** (gated vs the committed baseline): JSON merge
  wall-clock (parse every shard, concatenate, re-serialize) over mmap merge
  wall-clock.  The binary path copies int64 matrices and remaps string
  columns; it never materializes a record, so the ratio is large.
* **Size advantage** (gated): merged JSON bytes over merged ``.rrec``
  bytes.  At 8 bytes per field plus one interning table the packed file is
  well under 0.4x the JSON document (advantage well above 2.5x).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_records.py
    PYTHONPATH=src python benchmarks/bench_records.py \
        --report-only --json BENCH_records.json
"""

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.records import merge_record_files, read_records, write_records
from repro.scenarios.record import ScenarioRecord

ROWS = 120_000
SHARDS = 8
#: Floors the merge must clear on any machine (the committed baseline is the
#: conservative reference the regression checker applies its tolerance to).
MERGE_SPEEDUP_TARGET = 5.0
#: json_bytes / rrec_bytes must exceed this -- equivalently, the packed file
#: is at most 0.4x the JSON document.
SIZE_ADVANTAGE_TARGET = 2.5

_SCENARIOS = ("htree-swap-m3", "htree-teleport-m3", "ideal-m3", "perth-m1")
_ENGINES = ("feynman-tape", "feynman-batch")


def synthesize(rows: int) -> list[ScenarioRecord]:
    """A deterministic synthetic sweep of ``rows`` records (no RNG)."""
    records = []
    for index in range(rows):
        records.append(
            ScenarioRecord(
                scenario=_SCENARIOS[index % len(_SCENARIOS)],
                architecture="virtual",
                m=2 + index % 3,
                k=index % 2,
                mapping="htree",
                routing="swap",
                router="greedy-swap",
                device="htree-grid",
                num_qubits=20 + index % 40,
                logical_gates=100 + index % 1000,
                executed_gates=140 + index % 1400,
                extra_swaps=index % 60,
                link_operations=index % 12,
                measurements=index % 8,
                logical_depth=30 + index % 300,
                executed_depth=40 + index % 500,
                idle_error=1e-5 * (index % 7),
                readout_error=1e-4 * (index % 5),
                error_reduction_factor=float(1 + index % 100),
                shots=1024,
                engine=_ENGINES[index % len(_ENGINES)],
                fidelity=(index % 1000) / 1000.0,
                std_error=(index % 97) / 10_000.0,
                kept_fraction=1.0 - (index % 13) / 100.0,
            )
        )
    return records


def _shard(records: list, shards: int) -> list[list]:
    size = (len(records) + shards - 1) // shards
    return [records[start : start + size] for start in range(0, len(records), size)]


def _json_merge(paths: list[Path], output: Path) -> None:
    """The replaced path: parse every shard document, concatenate, re-dump."""
    merged = []
    for path in paths:
        with path.open(encoding="utf-8") as handle:
            merged.extend(json.load(handle))
    with output.open("w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")


def bench_records_mmap_merge(run_once):
    """pytest-benchmark harness: mmap-merge 8 shards of a 40k-record sweep."""
    with tempfile.TemporaryDirectory() as root:
        chunks = _shard(synthesize(40_000), SHARDS)
        paths = [
            write_records(Path(root, f"shard-{i}.rrec"), chunk)
            for i, chunk in enumerate(chunks)
        ]
        merged = run_once(
            merge_record_files, paths, Path(root, "merged.rrec")
        )
        assert Path(merged).stat().st_size > 0


def main(argv: list[str] | None = None) -> int:
    """Measure merge latency and file size; gate identity + both ratios."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="downgrade missed speedup/size targets from failure to warning "
        "(bit-identity always gates)",
    )
    parser.add_argument(
        "--rows", type=int, default=ROWS, help="synthetic sweep size"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="merge repeats (best-of)"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    print(
        f"workload: {args.rows} synthetic records, {SHARDS} shards, "
        f"{os.cpu_count()} cores"
    )
    records = synthesize(args.rows)
    chunks = _shard(records, SHARDS)
    with tempfile.TemporaryDirectory() as root:
        root = Path(root)
        rrec_paths, json_paths = [], []
        for index, chunk in enumerate(chunks):
            rrec_paths.append(write_records(root / f"s{index}.rrec", chunk))
            json_path = root / f"s{index}.json"
            with json_path.open("w", encoding="utf-8") as handle:
                json.dump(
                    [record.json_dict() for record in chunk],
                    handle,
                    indent=2,
                    sort_keys=True,
                    allow_nan=False,
                )
                handle.write("\n")
            json_paths.append(json_path)

        mmap_seconds = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            merge_record_files(rrec_paths, root / "merged.rrec", tag="bench")
            mmap_seconds = min(mmap_seconds, time.perf_counter() - start)

        json_seconds = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            _json_merge(json_paths, root / "merged.json")
            json_seconds = min(json_seconds, time.perf_counter() - start)

        rrec_bytes = (root / "merged.rrec").stat().st_size
        json_bytes = (root / "merged.json").stat().st_size

        serial = write_records(root / "serial.rrec", records, tag="bench")
        byte_identical = (
            (root / "merged.rrec").read_bytes() == serial.read_bytes()
        )
        with (root / "merged.json").open(encoding="utf-8") as handle:
            json_rows = json.load(handle)
        row_identical = (
            read_records(root / "merged.rrec")
            == [ScenarioRecord.from_dict(row) for row in json_rows]
        )

    merge_speedup = json_seconds / mmap_seconds
    size_advantage = json_bytes / rrec_bytes
    print(
        f"json merge {json_seconds * 1e3:.0f} ms, mmap merge "
        f"{mmap_seconds * 1e3:.1f} ms ({merge_speedup:.0f}x)"
    )
    print(
        f"merged size: json {json_bytes} bytes, rrec {rrec_bytes} bytes "
        f"({rrec_bytes / json_bytes:.2f}x on disk, {size_advantage:.1f}x smaller)"
    )
    print(f"mmap merge byte-identical to serial encode: {byte_identical}")
    print(f"mmap merge rows equal JSON merge rows: {row_identical}")

    if args.json:
        payload = {
            "benchmark": "records",
            "workload": {
                "rows": args.rows,
                "shards": SHARDS,
                "cores": os.cpu_count(),
            },
            "timings_seconds": {"json_merge": json_seconds, "mmap_merge": mmap_seconds},
            "merged_bytes": {"json": json_bytes, "rrec": rrec_bytes},
            "identical": bool(byte_identical and row_identical),
            "gates": {
                "merge_speedup": merge_speedup,
                "size_advantage": size_advantage,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not (byte_identical and row_identical):
        print("FAIL: the mmap merge changed the answer")
        return 1
    failures = []
    if merge_speedup < MERGE_SPEEDUP_TARGET:
        failures.append(
            f"merge speedup {merge_speedup:.1f}x is below the "
            f"{MERGE_SPEEDUP_TARGET:.0f}x floor"
        )
    if size_advantage < SIZE_ADVANTAGE_TARGET:
        failures.append(
            f"size advantage {size_advantage:.1f}x is below the "
            f"{SIZE_ADVANTAGE_TARGET:.1f}x floor (rrec must be <= 0.4x json)"
        )
    if failures:
        for message in failures:
            print(f"{'WARN' if args.report_only else 'FAIL'}: {message}")
        return 0 if args.report_only else 1
    print(
        f"OK: {merge_speedup:.0f}x merge speedup, {size_advantage:.1f}x "
        "smaller on disk"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
