"""Sec. 5.1 fidelity bounds (Eqs. 3, 5, 6) versus Monte-Carlo simulation.

Not a figure of its own in the paper, but the bounds underpin Figures 9-11 and
the asymmetric-code design of Sec. 5.2, so the harness regenerates a
bound-vs-simulation table under the qubit-based phase-flip channel the bounds
are derived for.
"""

import numpy as np
from conftest import emit

from repro.analysis import qram_z_fidelity_bound, virtual_z_fidelity_bound
from repro.experiments.common import format_table, random_memory
from repro.qram import VirtualQRAM
from repro.sim import FeynmanPathSimulator, PauliChannel, QubitOncePauliNoise, sample_noisy_circuit
from repro.sim.fidelity import reduced_fidelity

EPSILON = 2e-3
SHOTS = 400


def _qubit_noise_fidelity(architecture: VirtualQRAM, epsilon: float, shots: int) -> float:
    """Monte-Carlo fidelity under the per-qubit phase-flip channel of Sec. 5.1."""
    simulator = FeynmanPathSimulator()
    circuit = architecture.build_circuit()
    state = architecture.input_state()
    ideal = architecture.ideal_output(state)
    noise = QubitOncePauliNoise(PauliChannel.phase_flip(epsilon))
    rng = np.random.default_rng(2023)
    values = []
    for _ in range(shots):
        noisy_circuit = sample_noisy_circuit(circuit, noise, rng)
        noisy = simulator.run(noisy_circuit, state)
        values.append(reduced_fidelity(ideal, noisy, architecture.kept_qubits()))
    return float(np.mean(values))


def bench_eq3_bound_vs_simulation(run_once):
    """Eq. 3 (k = 0): simulated fidelity must sit above the analytic lower bound."""

    def sweep():
        rows = []
        for m in (1, 2, 3, 4):
            memory = random_memory(m)
            architecture = VirtualQRAM(memory=memory, qram_width=m)
            simulated = _qubit_noise_fidelity(architecture, EPSILON, SHOTS)
            bound = qram_z_fidelity_bound(EPSILON, m)
            rows.append([m, bound, simulated])
        return rows

    rows = run_once(sweep)
    emit(
        "Eq. 3 bound vs simulation (per-qubit Z channel, eps = 2e-3)",
        format_table(["m", "analytic bound", "simulated"], rows),
    )
    for _, bound, simulated in rows:
        assert simulated >= bound - 0.03


def bench_eq5_bound_vs_simulation(run_once):
    """Eq. 5 (hybrid bound): checked at a paged configuration (m=2, k=2)."""

    def run():
        memory = random_memory(4)
        architecture = VirtualQRAM(memory=memory, qram_width=2)
        simulated = _qubit_noise_fidelity(architecture, EPSILON, SHOTS)
        return simulated, virtual_z_fidelity_bound(EPSILON, 2, 2)

    simulated, bound = run_once(run)
    emit(
        "Eq. 5 bound vs simulation (m=2, k=2)",
        f"analytic bound: {bound:.4f}\nsimulated:      {simulated:.4f}",
    )
    assert simulated >= bound - 0.03
