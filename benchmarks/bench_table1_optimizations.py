"""Table 1: resource improvements from the three key optimizations.

Regenerates the RAW / OPT1 / OPT2 / OPT3 / ALL columns (qubits, circuit depth,
classically-controlled gates) both from the paper's formulas and from circuits
actually built with each option set, and prints the headline savings ratios.
"""

from conftest import emit

from repro.experiments import optimization_savings, run_table1, table1_report
from repro.experiments.common import format_table


def bench_table1_small_configuration(run_once):
    """Table 1 at (m=3, k=2): formulas vs measured circuits."""
    records = run_once(run_table1, 3, 2)
    assert len(records) == 15
    emit("Table 1 (m=3, k=2)", table1_report(m=3, k=2))


def bench_table1_paper_scale_configuration(run_once):
    """Table 1 at (m=5, k=3): a 256-cell memory on a 32-cell QRAM."""
    records = run_once(run_table1, 5, 3)
    assert all(record["measured"] > 0 for record in records)
    emit("Table 1 (m=5, k=3)", table1_report(m=5, k=3))


def bench_table1_headline_savings(run_once):
    """The savings ratios the paper highlights, measured at (m=5, k=3)."""
    savings = run_once(optimization_savings, 5, 3)
    rows = [[name, value] for name, value in savings.items()]
    emit(
        "Table 1 headline savings (measured, m=5, k=3)",
        format_table(["ratio", "value"], rows),
    )
    assert savings["qubit_ratio"] < 1.0
    assert savings["classical_gate_ratio"] < 0.75


def bench_table1_scaling_sweep(run_once):
    """Optimization savings across a sweep of QRAM widths (ablation study)."""

    def sweep():
        return {m: optimization_savings(m=m, k=2) for m in (3, 4, 5, 6)}

    results = run_once(sweep)
    rows = [
        [m, values["qubit_ratio"], values["depth_ratio"], values["classical_gate_ratio"]]
        for m, values in results.items()
    ]
    emit(
        "Table 1 savings vs QRAM width (k=2)",
        format_table(["m", "qubit_ratio", "depth_ratio", "classical_gate_ratio"], rows),
    )
    # Pipelining's relative benefit grows with m (the m^2 -> m reduction).
    assert results[6]["depth_ratio"] <= results[3]["depth_ratio"] + 0.05
