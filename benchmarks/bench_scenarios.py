"""Scenario subsystem benchmark: mapping overhead is real, sharded, and fast.

The workload is the built-in m = 3 mapping-ablation family (``ideal-m3`` /
``htree-swap-m3`` / ``htree-teleport-m3``) at a fixed seed and shot count,
executed through the sharded sweep runner.  Three properties are measured:

* **Determinism** (always gates): every scenario's records at 4 workers must
  be bit-identical to the serial run.
* **Physics** (gates vs the committed baseline): the fidelity *gap* between
  the ideal and each mapped scenario at ``eps_r = 1`` -- the quantitative
  signature that routing overhead is actually simulated.  The gap is a pure
  function of the seed, so it is machine-independent; each gap is gated
  together with its reciprocal (the checker only enforces lower bounds, so
  the pair brackets the value), and >20% drift in *either* direction flags
  a behavioural change in the mapping/noise stack.
* **Scaling** (gates unless ``--report-only``): the three-scenario sweep must
  reach at least a 2x speedup at 4 workers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
    PYTHONPATH=src python benchmarks/bench_scenarios.py \
        --report-only --json BENCH_scenarios.json
"""

import argparse
import json
import os
import time

from repro.experiments.common import format_table
from repro.scenarios import run_scenario
from repro.sim.engine import get_default_engine

SCENARIOS = ("ideal-m3", "htree-swap-m3", "htree-teleport-m3")
IDEAL, SWAP, TELEPORT = SCENARIOS
SHOTS = 128
SEED = 7
DEFAULT_SHARD_SIZE = 16
SPEEDUP_TARGET = 2.0
SPEEDUP_WORKERS = 4


def _run_family(workers: int, shard_size: int) -> dict[str, list[dict]]:
    return {
        name: run_scenario(
            name, shots=SHOTS, seed=SEED, workers=workers, shard_size=shard_size
        )
        for name in SCENARIOS
    }


def _fidelity_at(records: list[dict], factor: float) -> float:
    return next(
        r["fidelity"] for r in records if r["error_reduction_factor"] == factor
    )


def bench_scenario_family_serial(benchmark):
    """Serial mapping-ablation family: 3 scenarios x 3 eps_r x 128 shots."""
    results = benchmark(_run_family, 1, DEFAULT_SHARD_SIZE)
    assert set(results) == set(SCENARIOS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="downgrade a missed speedup target from failure to warning "
        "(determinism and the fidelity gaps always gate)",
    )
    parser.add_argument(
        "--shard-size", type=int, default=DEFAULT_SHARD_SIZE, help="shots per shard"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="repeats per worker count (best-of)"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    print(
        f"workload: scenarios {', '.join(SCENARIOS)}; {SHOTS} shots, "
        f"shard_size={args.shard_size}, engine={get_default_engine()}, "
        f"{os.cpu_count()} cores"
    )

    timings: dict[int, float] = {}
    results_by_workers: dict[int, dict[str, list[dict]]] = {}
    for workers in (1, SPEEDUP_WORKERS):
        best = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            results_by_workers[workers] = _run_family(workers, args.shard_size)
            best = min(best, time.perf_counter() - start)
        timings[workers] = best

    serial = results_by_workers[1]
    determinism_ok = results_by_workers[SPEEDUP_WORKERS] == serial

    ideal = _fidelity_at(serial[IDEAL], 1.0)
    swap_gap = ideal - _fidelity_at(serial[SWAP], 1.0)
    teleport_gap = ideal - _fidelity_at(serial[TELEPORT], 1.0)
    speedup = timings[1] / timings[SPEEDUP_WORKERS]

    rows = [
        [name, _fidelity_at(serial[name], 1.0), _fidelity_at(serial[name], 10.0)]
        for name in SCENARIOS
    ]
    print(format_table(["scenario", "fidelity@eps_r=1", "fidelity@eps_r=10"], rows))
    print(
        f"fidelity gaps at eps_r=1: swap={swap_gap:.4f} teleport={teleport_gap:.4f}"
    )
    print(
        f"serial {timings[1] * 1e3:.0f} ms, {SPEEDUP_WORKERS} workers "
        f"{timings[SPEEDUP_WORKERS] * 1e3:.0f} ms ({speedup:.2f}x)"
    )
    print(f"records bit-identical across worker counts: {determinism_ok}")

    if args.json:
        payload = {
            "benchmark": "scenarios",
            "workload": {
                "scenarios": list(SCENARIOS),
                "shots": SHOTS,
                "seed": SEED,
                "shard_size": args.shard_size,
                "engine": get_default_engine(),
                "cores": os.cpu_count(),
            },
            "timings_seconds": {str(w): timings[w] for w in sorted(timings)},
            "determinism_ok": determinism_ok,
            "gates": {
                # x100 keeps the gap metrics comfortably above the checker's
                # relative-tolerance noise floor for small absolute values;
                # the reciprocals turn the checker's one-sided floors into a
                # two-sided bracket (a gap growing >25% shrinks its
                # reciprocal below the 20%-tolerance floor).
                "swap_fidelity_gap_x100": swap_gap * 100.0,
                "swap_fidelity_gap_reciprocal": (
                    1.0 / swap_gap if swap_gap > 0 else 0.0
                ),
                "teleport_fidelity_gap_x100": teleport_gap * 100.0,
                "teleport_fidelity_gap_reciprocal": (
                    1.0 / teleport_gap if teleport_gap > 0 else 0.0
                ),
                f"speedup_at_{SPEEDUP_WORKERS}_workers": speedup,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not determinism_ok:
        print("FAIL: sharded records differ from the serial reference")
        return 1
    if swap_gap <= 0 or teleport_gap <= 0:
        print(
            "FAIL: mapped scenarios are not strictly below the unmapped "
            f"reference (swap gap {swap_gap:.4f}, teleport gap {teleport_gap:.4f})"
        )
        return 1
    if speedup < SPEEDUP_TARGET:
        message = (
            f"speedup {speedup:.2f}x at {SPEEDUP_WORKERS} workers is below "
            f"the {SPEEDUP_TARGET:.0f}x target"
        )
        if args.report_only:
            # Wall-clock scaling needs real cores; report on shared/serial boxes.
            print(f"WARN: {message}")
            return 0
        print(f"FAIL: {message}")
        return 1
    print(f"OK: {speedup:.2f}x speedup at {SPEEDUP_WORKERS} workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
