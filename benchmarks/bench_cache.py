"""Result-cache benchmark: warm hits are bit-identical and orders faster.

The workload is the heaviest builtin scenario, ``htree-teleport-executed``
(expanded hop chains, mid-circuit measurement), run fresh through the
sharded sweep runner and then re-read warm from a content-addressed cache.
Two properties are measured:

* **Bit-identity** (always gates): the warm records must equal the fresh
  ones exactly -- the cache may never change an answer, only its latency.
* **Warm-hit speedup** (gated vs the committed baseline): fresh wall-clock
  over warm wall-clock.  A warm hit is one JSON file read, so the ratio is
  huge; the committed baseline is deliberately conservative (the gate
  catches the cache silently re-executing, not file-system jitter).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cache.py
    PYTHONPATH=src python benchmarks/bench_cache.py \
        --report-only --json BENCH_cache.json
"""

import argparse
import json
import os
import tempfile
import time

from repro.cache import ResultCache
from repro.scenarios import run_scenario

SCENARIO = "htree-teleport-executed"
SHOTS = 64
SEED = 7
#: Floor the warm-hit speedup must clear on any machine: a warm hit that is
#: not at least this much faster means the cache re-computed something.
SPEEDUP_TARGET = 10.0


def _timed_run(cache: ResultCache, workers: int = 1) -> tuple[float, list]:
    start = time.perf_counter()
    records = run_scenario(
        SCENARIO, shots=SHOTS, seed=SEED, workers=workers, cache=cache
    )
    return time.perf_counter() - start, records


def bench_cache_warm_hit(benchmark):
    """pytest-benchmark harness: warm hit latency on a pre-warmed cache."""
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        _timed_run(cache)
        records = benchmark(
            run_scenario, SCENARIO, shots=SHOTS, seed=SEED, workers=1, cache=cache
        )
        assert records


def main(argv: list[str] | None = None) -> int:
    """Measure fresh-vs-warm latency and gate identity + speedup."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="downgrade a missed speedup target from failure to warning "
        "(bit-identity always gates)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="warm-hit repeats (best-of)"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    print(
        f"workload: {SCENARIO}, {SHOTS} shots, seed {SEED}, "
        f"{os.cpu_count()} cores"
    )
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        fresh_seconds, fresh_records = _timed_run(cache)
        warm_seconds = float("inf")
        warm_records = None
        for _ in range(args.repeats):
            elapsed, warm_records = _timed_run(cache)
            warm_seconds = min(warm_seconds, elapsed)
        document_bytes = cache.path_for(cache.fingerprints()[0]).stat().st_size

    identical = warm_records == fresh_records
    speedup = fresh_seconds / warm_seconds
    print(
        f"fresh {fresh_seconds * 1e3:.0f} ms, warm hit {warm_seconds * 1e3:.2f} ms "
        f"({speedup:.0f}x), cached document {document_bytes} bytes"
    )
    print(f"warm records bit-identical to fresh run: {identical}")

    if args.json:
        payload = {
            "benchmark": "cache",
            "workload": {
                "scenario": SCENARIO,
                "shots": SHOTS,
                "seed": SEED,
                "cores": os.cpu_count(),
            },
            "timings_seconds": {"fresh": fresh_seconds, "warm": warm_seconds},
            "document_bytes": document_bytes,
            "identical": identical,
            "gates": {"warm_hit_speedup": speedup},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not identical:
        print("FAIL: warm cache hit returned different records than the fresh run")
        return 1
    if speedup < SPEEDUP_TARGET:
        message = (
            f"warm-hit speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_TARGET:.0f}x floor"
        )
        if args.report_only:
            print(f"WARN: {message}")
            return 0
        print(f"FAIL: {message}")
        return 1
    print(f"OK: {speedup:.0f}x warm-hit speedup")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
