"""Sec. 6.2: Feynman-path simulation scales far beyond dense statevector simulation.

The paper's evaluation methodology rests on the observation that QRAM circuits
are built from basis-permutation gates, so the path simulator's cost per query
is O(n_gates * n_paths) with memory constant in depth, while a dense
statevector needs 2^(qubit count) amplitudes.  These benchmarks measure both
engines on the same circuits and demonstrate the cross-over: the largest QRAM
the dense simulator can touch is tiny, while the path simulator comfortably
reaches the m = 6..8 sizes used in Figures 9-11.
"""

import time

import numpy as np
from conftest import emit

from repro.experiments.common import format_table, random_memory
from repro.qram import VirtualQRAM
from repro.sim import FeynmanPathSimulator, GateNoiseModel, PauliChannel, StatevectorSimulator


def _query_circuit(m: int):
    memory = random_memory(m)
    architecture = VirtualQRAM(memory=memory, qram_width=m)
    return architecture, architecture.build_circuit()


def bench_path_simulator_noiseless_m6(benchmark):
    """Noiseless path simulation of a capacity-64 QRAM query (197 qubits)."""
    architecture, circuit = _query_circuit(6)
    state = architecture.input_state()
    simulator = FeynmanPathSimulator()
    output = benchmark(simulator.run, circuit, state)
    assert output.num_paths == 64


def bench_path_simulator_noisy_shots_m5(benchmark):
    """256 Monte-Carlo noisy shots of a capacity-32 QRAM query."""
    architecture, circuit = _query_circuit(5)
    state = architecture.input_state()
    noise = GateNoiseModel(PauliChannel.phase_flip(1e-3))
    simulator = FeynmanPathSimulator()

    def run():
        return simulator.query_fidelities(
            circuit, state, noise, shots=256, keep_qubits=architecture.kept_qubits(),
            rng=np.random.default_rng(0),
        )

    result = benchmark(run)
    assert 0.0 <= result.mean_fidelity <= 1.0


def bench_statevector_simulator_largest_feasible(benchmark):
    """Dense simulation of the largest QRAM that still fits (m = 2, 13 qubits)."""
    architecture, circuit = _query_circuit(2)
    state = architecture.input_state()
    simulator = StatevectorSimulator()
    vector = benchmark(simulator.run, circuit, state)
    assert np.isclose(np.linalg.norm(vector), 1.0)


def bench_simulator_crossover_table(run_once):
    """Side-by-side runtime of both engines as the QRAM width grows."""

    def sweep():
        rows = []
        for m in (1, 2, 3, 4, 5, 6):
            architecture, circuit = _query_circuit(m)
            state = architecture.input_state()
            start = time.perf_counter()
            FeynmanPathSimulator().run(circuit, state)
            path_seconds = time.perf_counter() - start

            if circuit.num_qubits <= 20:
                start = time.perf_counter()
                StatevectorSimulator().run(circuit, state)
                dense_seconds = time.perf_counter() - start
                dense_text = f"{dense_seconds:.4f}"
            else:
                dense_text = f"infeasible ({circuit.num_qubits} qubits)"
            rows.append([m, circuit.num_qubits, f"{path_seconds:.4f}", dense_text])
        return rows

    rows = run_once(sweep)
    emit(
        "Simulator scaling (seconds per noiseless query simulation)",
        format_table(["m", "qubits", "Feynman path", "dense statevector"], rows),
    )
    # The dense simulator falls off a cliff (or becomes infeasible) well before
    # the sizes the evaluation needs.
    assert "infeasible" in rows[-1][3]


def bench_path_cost_linear_in_paths(run_once):
    """Path-simulation cost grows with the number of input paths, not with 2^qubits."""

    def sweep():
        architecture, circuit = _query_circuit(6)
        timings = []
        for num_addresses in (1, 8, 64):
            amplitude = 1.0 / np.sqrt(num_addresses)
            amplitudes = {a: amplitude for a in range(num_addresses)}
            state = architecture.input_state(amplitudes)
            start = time.perf_counter()
            FeynmanPathSimulator().run(circuit, state)
            timings.append((num_addresses, time.perf_counter() - start))
        return timings

    timings = run_once(sweep)
    emit(
        "Path-count scaling (capacity-64 QRAM)",
        "\n".join(f"{paths} paths: {seconds:.4f}s" for paths, seconds in timings),
    )
    # 64x more paths must cost far less than 64x more time (vectorisation).
    assert timings[-1][1] < 64 * max(timings[0][1], 1e-4)
