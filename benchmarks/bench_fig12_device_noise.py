"""Figure 12 / Appendix A: small virtual QRAMs under device-derived noise.

Regenerates the four-configuration fidelity-vs-eps_r study on the
ibm_perth-like and ibmq_guadalupe-like device models, including the extra
SWAP counts forced by their sparse connectivity, and checks the Appendix's
conclusions about how much hardware improvement small QRAMs need.
"""

from conftest import emit

from repro.experiments import DEFAULT_CONFIGURATIONS, fig12_report, run_fig12

FACTORS = (0.1, 1.0, 10.0, 100.0, 1000.0)
SHOTS = 200


def bench_fig12_device_study(run_once):
    records = run_once(run_fig12, DEFAULT_CONFIGURATIONS, FACTORS, shots=SHOTS)
    emit("Figure 12 (device noise study)", fig12_report(DEFAULT_CONFIGURATIONS, FACTORS, shots=SHOTS))

    def fidelity(label: str, factor: float) -> float:
        return next(
            r["fidelity"]
            for r in records
            if r["configuration"] == label and r["error_reduction_factor"] == factor
        )

    swaps = {r["configuration"]: r["extra_swaps"] for r in records}
    # Sparse connectivity forces extra SWAPs, more of them for the larger QRAMs.
    assert swaps["m=2,k=1"] > swaps["m=1,k=0"]
    # Current error rates are not enough; 10x better hardware helps a lot and
    # at 1000x (error rates ~1e-5) the query fidelity exceeds 0.98.
    for label in swaps:
        assert fidelity(label, 10.0) >= fidelity(label, 1.0) - 0.02
    assert fidelity("m=1,k=0", 1000.0) > 0.98
    assert fidelity("m=2,k=0", 1000.0) > 0.95


def bench_fig12_swap_overhead_only(run_once):
    """Routing cost of the four configurations (the SWAP counts under the legend)."""
    from repro.experiments.fig12 import route_configuration

    def route_all():
        counts = {}
        for configuration in DEFAULT_CONFIGURATIONS:
            _, routed = route_configuration(configuration)
            counts[configuration.label] = routed.swap_count
        return counts

    counts = run_once(route_all)
    emit(
        "Figure 12 extra SWAP counts (greedy router)",
        "\n".join(f"{label}: {count} SWAPs" for label, count in counts.items()),
    )
    assert counts["m=2,k=1"] > counts["m=1,k=1"]
