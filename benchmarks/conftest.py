"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; the
regenerated rows/series are collected via :func:`emit` and written out in the
terminal summary at the end of the run, so that

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

leaves a complete textual record of the reproduction next to the timing data
even though pytest captures per-test output.

The experiment runners are deterministic (seeded) but not cheap, so most
benchmarks run a single round via ``benchmark.pedantic`` rather than letting
pytest-benchmark calibrate thousands of iterations.
"""

from __future__ import annotations

import pytest

#: Reproduced tables/series collected during the run, in emission order.
_REPORTS: list[tuple[str, str]] = []


@pytest.fixture
def run_once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return runner


def emit(title: str, body: str) -> None:
    """Record (and print) a reproduced table/series with a recognisable banner."""
    _REPORTS.append((title, body))
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every reproduced table after the timing summary."""
    if not _REPORTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced tables and figures", sep="=")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * len(title))
        for line in body.splitlines():
            terminalreporter.write_line(line)
