"""Fused entanglement-swapping links vs sequential hop chains under idle noise.

The branching tentpole's quantitative acceptance: constant-depth fused
links must *beat* the depth-``d`` sequential hop chains of
``teleport-executed`` routing when idle dephasing is what dominates.  The
workload is the deep-tree regime where fusion pays -- ``qram_width=5``
(arm-length-4 hop chains) with ``idle_error=0.01`` at ``eps_r=10`` -- as
variants of the built-in ``htree-teleport-fused-idle`` /
``htree-teleport-executed-idle`` pair.  Three properties gate:

* **Zero-noise exactness** (always gates): the m=3 fused scenario
  reproduces the analytic constant-depth model exactly -- every shot
  fidelity 1.0.
* **Idle advantage** (always gates): fused fidelity strictly exceeds the
  executed-hop fidelity on the deep-tree idle workload.
* **Structure + magnitude** (gates vs the committed baseline): the
  executed/fused depth and gate-idle-slack ratios (pure functions of the
  compile, machine-independent) and the fidelity advantage with its
  reciprocal (pure function of the seed; the reciprocal turns the
  checker's one-sided floor into a two-sided bracket).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fused_links.py
    PYTHONPATH=src python benchmarks/bench_fused_links.py \
        --json BENCH_fused_links.json
"""

import argparse
import json

import numpy as np

from repro.circuit.scheduling import idle_slack
from repro.experiments.common import format_table
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.compile import compile_scenario
from repro.sim.feynman import FeynmanPathSimulator
from repro.sim.noise import NoiselessModel
from repro.sim.seeding import ShotSeeds

SEED = 7
SHOTS = 512
QRAM_WIDTH = 5
IDLE_ERROR = 0.01
FACTOR = 10.0


def _deep_variant(base: str, tag: str):
    return get_scenario(base).variant(
        f"{base}-bench-{tag}",
        "deep-tree idle ablation (fused-links benchmark)",
        qram_width=QRAM_WIDTH,
        idle_error=IDLE_ERROR,
        error_reduction_factors=(FACTOR,),
    )


def _gate_idle_total(circuit) -> int:
    slack = idle_slack(circuit)
    return sum(layers for layer in slack.gate_idle for (_, layers) in layer)


def _zero_noise_exact() -> bool:
    compiled = compile_scenario(get_scenario("htree-teleport-fused"), SEED)
    result = FeynmanPathSimulator().query_fidelities(
        compiled.circuit,
        compiled.input_state,
        NoiselessModel(),
        16,
        keep_qubits=list(compiled.keep_qubits),
        ideal_output=compiled.ideal_output,
        rng=ShotSeeds(seed=SEED),
    )
    return bool(np.allclose(result.fidelities, 1.0))


def bench_fused_deep_tree_serial(benchmark):
    """Serial deep-tree fused sweep: m=5, idle 0.01, eps_r=10, 64 shots."""
    spec = _deep_variant("htree-teleport-fused-idle", "pytest")
    records = benchmark(run_scenario, spec, shots=64, seed=SEED, workers=1)
    assert 0.0 <= records[0]["fidelity"] <= 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=4, help="sweep workers (records invariant)"
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write measurements to this path"
    )
    args = parser.parse_args(argv)

    fused_spec = _deep_variant("htree-teleport-fused-idle", "gate")
    executed_spec = _deep_variant("htree-teleport-executed-idle", "gate")
    fused_compiled = compile_scenario(fused_spec, SEED)
    executed_compiled = compile_scenario(executed_spec, SEED)

    depth_ratio = (
        executed_compiled.executed_depth / fused_compiled.executed_depth
    )
    idle_ratio = _gate_idle_total(executed_compiled.circuit) / _gate_idle_total(
        fused_compiled.circuit
    )
    print(
        f"workload: m={QRAM_WIDTH} H-tree, idle_error={IDLE_ERROR}, "
        f"eps_r={FACTOR}, {SHOTS} shots, seed={SEED}"
    )
    print(
        f"depth: fused {fused_compiled.executed_depth} vs executed "
        f"{executed_compiled.executed_depth} (ratio {depth_ratio:.3f}); "
        f"gate-idle slack ratio {idle_ratio:.3f}"
    )

    exact = _zero_noise_exact()
    print(f"m=3 fused zero-noise exact: {exact}")

    fidelities = {}
    for label, spec in (("fused", fused_spec), ("executed", executed_spec)):
        records = run_scenario(
            spec, shots=SHOTS, seed=SEED, workers=args.workers
        )
        fidelities[label] = (records[0]["fidelity"], records[0]["std_error"])
    advantage = fidelities["fused"][0] - fidelities["executed"][0]

    rows = [
        [label, fidelity, std_error]
        for label, (fidelity, std_error) in fidelities.items()
    ]
    print(format_table(["routing", f"fidelity@eps_r={FACTOR}", "std_error"], rows))
    print(f"fused idle-dephasing advantage: {advantage:+.4f}")

    if args.json:
        payload = {
            "benchmark": "fused_links",
            "workload": {
                "qram_width": QRAM_WIDTH,
                "idle_error": IDLE_ERROR,
                "error_reduction_factor": FACTOR,
                "shots": SHOTS,
                "seed": SEED,
            },
            "zero_noise_exact": exact,
            "fidelities": {
                label: {"fidelity": fidelity, "std_error": std_error}
                for label, (fidelity, std_error) in fidelities.items()
            },
            "gates": {
                "depth_ratio_executed_over_fused": depth_ratio,
                "gate_idle_slack_ratio": idle_ratio,
                "fused_advantage_x100": advantage * 100.0,
                "fused_advantage_reciprocal": (
                    1.0 / advantage if advantage > 0 else 0.0
                ),
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not exact:
        print("FAIL: fused links are not exact at zero noise")
        return 1
    if advantage <= 0:
        print(
            "FAIL: fused links do not beat sequential hops under idle "
            f"dephasing (advantage {advantage:+.4f})"
        )
        return 1
    print(f"OK: fused beats executed by {advantage:+.4f} under idle dephasing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
